#include "drum/harness/swarm.hpp"

#include <sys/resource.h>
#include <sys/time.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "drum/check/check.hpp"
#include "drum/core/message.hpp"
#include "drum/crypto/portbox.hpp"
#include "drum/net/udp_transport.hpp"

namespace drum::harness {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

double tv_to_s(const timeval& tv) {
  return static_cast<double>(tv.tv_sec) +
         static_cast<double>(tv.tv_usec) * 1e-6;
}

}  // namespace

Swarm::Swarm(SwarmConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  check::reset_nonce_tracker();
  if (cfg_.n < 4) throw std::invalid_argument("swarm too small");
  if (cfg_.payload_size < 8) {
    throw std::invalid_argument("payload_size must fit the 8-byte timestamp");
  }

  if (!cfg_.use_udp) {
    net::MemNetwork::Options opts;
    opts.seed = rng_.next();
    // Real time, not virtual: datagrams become receivable immediately and
    // the readiness bridge wakes the loop; wall-clock scheduling supplies
    // the contention a virtual latency models in Cluster.
    opts.latency_us = 0;
    mem_net_ = std::make_unique<net::MemNetwork>(opts);
  }

  const std::uint32_t udp_host = net::parse_ipv4("127.0.0.1");
  std::vector<crypto::Identity> identities;
  identities.reserve(cfg_.n);
  directory_.resize(cfg_.n);
  for (std::uint32_t id = 0; id < cfg_.n; ++id) {
    identities.push_back(crypto::Identity::generate(rng_));
    core::Peer& p = directory_[id];
    p.id = id;
    p.host = cfg_.use_udp ? udp_host : id;
    p.wk_pull_port = static_cast<std::uint16_t>(cfg_.udp_base_port + 3 * id);
    p.wk_offer_port =
        static_cast<std::uint16_t>(cfg_.udp_base_port + 3 * id + 1);
    p.wk_pull_reply_port =
        static_cast<std::uint16_t>(cfg_.udp_base_port + 3 * id + 2);
    p.sign_pub = identities[id].sign_public();
    p.dh_pub = identities[id].dh_public();
  }

  // Colluding insiders occupy the tail ids: directory members with real
  // identities the attacker holds, but no live protocol node.
  auto n_colluders = static_cast<std::size_t>(
      cfg_.malicious * static_cast<double>(cfg_.n) + 0.5);
  n_colluders = std::min(n_colluders, cfg_.n / 2);
  const std::size_t n_live = cfg_.n - n_colluders;
  for (std::size_t i = n_live; i < cfg_.n; ++i) {
    const auto id = static_cast<std::uint32_t>(i);
    colluder_ids_.push_back(id);
    colluder_identities_.push_back(identities[id]);
  }

  auto n_attacked = static_cast<std::size_t>(
      cfg_.alpha * static_cast<double>(cfg_.n) + 0.5);
  n_attacked = std::min(n_attacked, n_live);
  const bool attack_on =
      n_attacked > 0 && (cfg_.x > 0 || n_colluders > 0);
  if (attack_on) {
    // The legacy x knob keeps its meaning for every strategy: fabricated
    // messages per victim per round.
    adversary::Params aparams = cfg_.attack_params;
    if (cfg_.x > 0) aparams.x = cfg_.x;
    adversary_ = adversary::make(cfg_.adversary, aparams);
    for (std::size_t i = 0; i < n_attacked; ++i) {
      victims_.push_back(static_cast<std::uint32_t>(i));
    }
  }

  activity_ = std::vector<std::atomic<std::uint32_t>>(n_live);
  nodes_.reserve(n_live);
  // One immutable directory shared by every node (Node::PeerDirectory).
  // Passing the vector by value instead would hand each of n nodes its own
  // n-entry copy — O(n²) Peer storage, ~8 GB at 10k nodes.
  auto shared_dir =
      std::make_shared<const std::vector<core::Peer>>(directory_);
  for (std::uint32_t id = 0; id < n_live; ++id) {
    LiveNode live;
    live.id = id;
    live.transport = cfg_.use_udp
                         ? std::unique_ptr<net::Transport>(
                               std::make_unique<net::UdpTransport>(udp_host))
                         : mem_net_->transport(id);
    core::NodeConfig ncfg =
        core::make_node_config(cfg_.variant, id, cfg_.fanout);
    ncfg.wk_pull_port = directory_[id].wk_pull_port;
    ncfg.wk_offer_port = directory_[id].wk_offer_port;
    ncfg.wk_pull_reply_port = directory_[id].wk_pull_reply_port;
    ncfg.verify_signatures = cfg_.verify_signatures;
    ncfg.scoring = cfg_.scoring;
    live.node = std::make_unique<core::Node>(
        ncfg, identities[id], shared_dir, *live.transport, rng_.next(),
        [this, id](const core::Node::Delivery& d) { on_delivery(id, d); });
    // Pairwise keys are a join-time cost (the membership layer hands them
    // out in the paper's model); derive them here so the measured attack
    // window is not billed n-1 X25519 exchanges per node. Optional because
    // it is O(n²) across the group (see SwarmConfig::prewarm).
    if (cfg_.prewarm) live.node->prewarm_pair_keys();
    nodes_.push_back(std::move(live));
  }

  if (cfg_.reactor) {
    runtime::ReactorConfig rc;
    rc.round = cfg_.round;
    rc.jitter = cfg_.jitter;
    rc.workers = cfg_.workers;
    rc.shards = cfg_.shards;
    reactor_ = std::make_unique<runtime::ReactorRuntime>(rc);
    for (auto& live : nodes_) reactor_->add_node(*live.node, rng_.next());
  } else {
    runtime::RunnerConfig rc;
    rc.round = cfg_.round;
    rc.jitter = cfg_.jitter;
    for (auto& live : nodes_) {
      live.runner = std::make_unique<runtime::NodeRunner>(*live.node, rc,
                                                          rng_.next());
    }
  }
}

Swarm::~Swarm() { stop(); }

void Swarm::on_delivery(std::uint32_t node_id,
                        const core::Node::Delivery& d) {
  delivered_.fetch_add(1, std::memory_order_relaxed);
  activity_[node_id].fetch_add(1, std::memory_order_relaxed);
  if (!measuring_.load(std::memory_order_relaxed)) return;
  if (d.msg.payload.size() < 8) return;
  const auto sent =
      static_cast<std::int64_t>(get_u64(d.msg.payload.data()));
  const std::int64_t lat = now_us() - sent;
  if (lat < 0) return;
  check::MutexLock lock(lat_mu_);
  latency_ms_.add(static_cast<double>(lat) / 1000.0);
}

void Swarm::start() {
  check::MutexLock lifecycle(lifecycle_mu_);
  if (started_) return;
  started_ = true;
  if (reactor_) {
    reactor_->start();
  } else {
    for (auto& live : nodes_) live.runner->start();
  }
  if (!victims_.empty()) {
    attacker_stop_.store(false);
    attacker_ = std::thread([this] { attacker_main(); });
  }
}

void Swarm::stop() {
  check::MutexLock lifecycle(lifecycle_mu_);
  if (!started_) return;
  started_ = false;
  attacker_stop_.store(true);
  if (attacker_.joinable()) attacker_.join();
  if (reactor_) {
    reactor_->stop();
  } else {
    for (auto& live : nodes_) live.runner->stop();
  }
}

void Swarm::run_for(std::chrono::milliseconds d) {
  {
    check::MutexLock lifecycle(lifecycle_mu_);
    DRUM_REQUIRE(started_, "run_for before start()");
  }
  rusage ru0{};
  ::getrusage(RUSAGE_SELF, &ru0);
  const auto t0 = Clock::now();
  const auto end = t0 + d;
  measuring_.store(true);

  util::Bytes payload(cfg_.payload_size);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng_.below(256));
  const auto send_interval =
      std::chrono::duration_cast<Clock::duration>(cfg_.round) /
      static_cast<std::int64_t>(std::max<std::size_t>(1, cfg_.rate));
  auto next_send = t0;
  while (Clock::now() < end) {
    put_u64(payload.data(), static_cast<std::uint64_t>(now_us()));
    if (reactor_) {
      reactor_->multicast(0, util::ByteSpan(payload));
    } else {
      nodes_[0].runner->multicast(util::ByteSpan(payload));
    }
    next_send += send_interval;
    std::this_thread::sleep_until(std::min(next_send, end));
  }

  measuring_.store(false);
  rusage ru1{};
  ::getrusage(RUSAGE_SELF, &ru1);
  wall_s_ += std::chrono::duration<double>(Clock::now() - t0).count();
  cpu_user_s_ += tv_to_s(ru1.ru_utime) - tv_to_s(ru0.ru_utime);
  cpu_sys_s_ += tv_to_s(ru1.ru_stime) - tv_to_s(ru0.ru_stime);
}

void Swarm::attacker_main() {
  // Thread-confined RNG; the golden-ratio offset decorrelates it from the
  // construction-time stream without reseeding the swarm.
  util::Rng arng(cfg_.seed ^ 0x9E3779B97F4A7C15ull);
  std::unique_ptr<net::Transport> tr;
  std::unique_ptr<net::Socket> sock;
  if (cfg_.use_udp) {
    tr = std::make_unique<net::UdpTransport>(net::parse_ipv4("127.0.0.1"));
    sock = tr->bind(0).take();
    if (!sock) return;
  }

  // Per-victim budgets and channel availability are protocol configuration —
  // public knowledge a real attacker has.
  const core::NodeConfig proto =
      core::make_node_config(cfg_.variant, 0, cfg_.fanout);

  const std::size_t n_live = nodes_.size();
  std::vector<float> usefulness(cfg_.n, 0.0F);
  std::vector<std::uint32_t> last_activity(n_live, 0);

  // Pairwise keys for insider frames, derived lazily per (colluder, victim)
  // from the colluder identities the attacker holds.
  std::unordered_map<std::uint64_t, util::Bytes> pair_keys;
  const auto first_colluder = static_cast<std::uint32_t>(n_live);
  auto insider_key = [&](std::uint32_t colluder,
                         std::uint32_t target) -> util::ByteSpan {
    const std::uint64_t k =
        (static_cast<std::uint64_t>(colluder) << 32) | target;
    auto it = pair_keys.find(k);
    if (it == pair_keys.end()) {
      it = pair_keys
               .emplace(k, colluder_identities_[colluder - first_colluder]
                               .derive_pair_key(directory_[target].dh_pub))
               .first;
    }
    return util::ByteSpan(it->second);
  };

  auto port_for = [](const core::Peer& p, adversary::Channel c) {
    switch (c) {
      case adversary::Channel::kOffer:
        return p.wk_offer_port;
      case adversary::Channel::kPullRequest:
        return p.wk_pull_port;
      case adversary::Channel::kPullReply:
      default:
        return p.wk_pull_reply_port;
    }
  };

  // One fabricated datagram for a flood action. Spoofed frames carry garbage
  // boxes (off-path attacker, unattributable); insider frames are sealed
  // with the real pair key around a bogus reply port, so they authenticate —
  // and then black-hole whatever the victim sends back.
  auto craft = [&](const adversary::Flood& f) -> util::Bytes {
    const bool spoofed = f.claimed_sender == adversary::kSpoofed;
    const std::uint32_t sender =
        spoofed ? static_cast<std::uint32_t>(arng.below(cfg_.n))
                : f.claimed_sender;
    if (f.channel == adversary::Channel::kPullReply) {
      return core::encode(core::PullReply{sender, {}});
    }
    util::Bytes box;
    if (spoofed) {
      box.resize(crypto::kPortBoxOverhead + 2);
      for (auto& b : box) b = static_cast<std::uint8_t>(arng.below(256));
    } else {
      box = crypto::portbox_seal_port(insider_key(sender, f.target), 9, arng);
    }
    if (f.channel == adversary::Channel::kOffer) {
      core::PushOffer offer;
      offer.sender = sender;
      offer.boxed_reply_port = std::move(box);
      return core::encode(offer);
    }
    core::PullRequest req;
    req.sender = sender;
    req.boxed_reply_port = std::move(box);
    return core::encode(req);
  };

  const auto bursts =
      std::max<std::size_t>(1, cfg_.attacker_bursts_per_round);
  const auto gap = std::chrono::duration_cast<Clock::duration>(cfg_.round) /
                   static_cast<std::int64_t>(bursts);

  adversary::Plan plan;
  std::vector<util::Bytes> payloads;
  std::vector<util::ByteSpan> spans;
  std::uint64_t round_no = 0;

  while (!attacker_stop_.load()) {
    // Usefulness = deliveries observed at each node since the last plan,
    // the coarse activity signal adaptive re-targeting keys on.
    for (std::size_t i = 0; i < n_live; ++i) {
      const std::uint32_t cur = activity_[i].load(std::memory_order_relaxed);
      usefulness[i] = static_cast<float>(cur - last_activity[i]);
      last_activity[i] = cur;
    }

    adversary::RoundView view;
    view.round = round_no++;
    view.n = cfg_.n;
    view.attacked = victims_;
    view.colluders = colluder_ids_;
    view.offer_budget = proto.offer_budget();
    view.pull_request_budget = proto.pull_request_budget();
    view.push_channel = proto.view_push() > 0;
    view.pull_channel = proto.view_pull() > 0;
    view.reply_port_attackable = cfg_.variant == core::Variant::kDrumWkPorts;
    view.usefulness = usefulness;
    plan.clear();
    adversary_->plan_round(view, arng, plan);
    // plan.view_capture is the sim's membership model; the live realization
    // of an eclipse is the colluders themselves — authenticated directory
    // members that never answer, black-holing every pull aimed at them.

    for (std::size_t b = 0; b < bursts && !attacker_stop_.load(); ++b) {
      const auto burst_start = Clock::now();
      for (const auto& f : plan.floods) {
        std::size_t count = f.count / bursts;
        if (b < f.count % bursts) ++count;
        if (count == 0 || f.target >= directory_.size()) continue;
        const core::Peer& p = directory_[f.target];
        const net::Address target{p.host, port_for(p, f.channel)};
        payloads.clear();
        for (std::size_t i = 0; i < count; ++i) {
          payloads.push_back(craft(f));
        }
        if (mem_net_) {
          for (const auto& pl : payloads) {
            net::Address src{
                0xDEAD0000u | static_cast<std::uint32_t>(arng.below(65536)),
                static_cast<std::uint16_t>(1024 + arng.below(60000))};
            mem_net_->send_raw(src, target, util::ByteSpan(pl));
          }
        } else {
          spans.clear();
          spans.reserve(payloads.size());
          for (const auto& pl : payloads) spans.emplace_back(pl);
          sock->send_batch(target, spans.data(), spans.size());
        }
        attack_sent_.fetch_add(payloads.size(), std::memory_order_relaxed);
      }
      std::this_thread::sleep_until(burst_start + gap);
    }
  }
}

SwarmReport Swarm::report() const {
  SwarmReport r;
  r.nodes = nodes_.size();
  if (cfg_.reactor) {
    const std::size_t sh = std::max<std::size_t>(1, reactor_->shard_count());
    r.shards = sh;
    r.threads = sh >= 2 ? sh : 1 + cfg_.workers;
  } else {
    r.threads = nodes_.size();
  }
  r.wall_s = wall_s_;
  r.cpu_user_s = cpu_user_s_;
  r.cpu_sys_s = cpu_sys_s_;
  obs::MetricsRegistry merged;
  for (const auto& live : nodes_) merged.merge(live.node->registry());
  r.rounds = merged.counter_value("runner.ticks");
  r.polls = merged.counter_value("runner.polls");
  r.delivered = merged.counter_value("node.delivered");
  r.attack_datagrams = attack_sent_.load();
  r.ingress_datagrams = merged.counter_value("node.datagrams_read") +
                        merged.counter_value("node.flushed_unread") +
                        merged.counter_value("score.greylist_drops");
  r.colluders = colluder_ids_.size();
  if (cfg_.scoring.enabled) {
    r.greylist_drops = merged.counter_value("score.greylist_drops");
    for (const auto& live : nodes_) {
      core::PeerScoreTable& t = live.node->score_table();
      r.greylist_entries += t.greylist_entries();
      r.greylisted_at_end += t.currently_greylisted();
    }
  }
  {
    check::MutexLock lock(lat_mu_);
    r.latency_samples = latency_ms_.count();
    r.latency_ms_mean = latency_ms_.mean();
    r.latency_ms_p50 = latency_ms_.percentile(0.50);
    r.latency_ms_p90 = latency_ms_.percentile(0.90);
    r.latency_ms_p99 = latency_ms_.percentile(0.99);
  }
  if (reactor_) r.loop_metrics_json = reactor_->loop_registry().to_json();
  return r;
}

}  // namespace drum::harness
