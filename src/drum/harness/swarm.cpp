#include "drum/harness/swarm.hpp"

#include <sys/resource.h>
#include <sys/time.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "drum/check/check.hpp"
#include "drum/core/message.hpp"
#include "drum/crypto/portbox.hpp"
#include "drum/net/udp_transport.hpp"

namespace drum::harness {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

double tv_to_s(const timeval& tv) {
  return static_cast<double>(tv.tv_sec) +
         static_cast<double>(tv.tv_usec) * 1e-6;
}

}  // namespace

Swarm::Swarm(SwarmConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  check::reset_nonce_tracker();
  if (cfg_.n < 4) throw std::invalid_argument("swarm too small");
  if (cfg_.payload_size < 8) {
    throw std::invalid_argument("payload_size must fit the 8-byte timestamp");
  }

  if (!cfg_.use_udp) {
    net::MemNetwork::Options opts;
    opts.seed = rng_.next();
    // Real time, not virtual: datagrams become receivable immediately and
    // the readiness bridge wakes the loop; wall-clock scheduling supplies
    // the contention a virtual latency models in Cluster.
    opts.latency_us = 0;
    mem_net_ = std::make_unique<net::MemNetwork>(opts);
  }

  const std::uint32_t udp_host = net::parse_ipv4("127.0.0.1");
  std::vector<crypto::Identity> identities;
  identities.reserve(cfg_.n);
  directory_.resize(cfg_.n);
  for (std::uint32_t id = 0; id < cfg_.n; ++id) {
    identities.push_back(crypto::Identity::generate(rng_));
    core::Peer& p = directory_[id];
    p.id = id;
    p.host = cfg_.use_udp ? udp_host : id;
    p.wk_pull_port = static_cast<std::uint16_t>(cfg_.udp_base_port + 3 * id);
    p.wk_offer_port =
        static_cast<std::uint16_t>(cfg_.udp_base_port + 3 * id + 1);
    p.wk_pull_reply_port =
        static_cast<std::uint16_t>(cfg_.udp_base_port + 3 * id + 2);
    p.sign_pub = identities[id].sign_public();
    p.dh_pub = identities[id].dh_public();
  }

  auto n_attacked = static_cast<std::size_t>(
      cfg_.alpha * static_cast<double>(cfg_.n) + 0.5);
  n_attacked = std::min(n_attacked, cfg_.n);
  if (cfg_.x > 0) {
    for (std::size_t i = 0; i < n_attacked; ++i) {
      victims_.push_back(static_cast<std::uint32_t>(i));
    }
  }

  nodes_.reserve(cfg_.n);
  for (std::uint32_t id = 0; id < cfg_.n; ++id) {
    LiveNode live;
    live.id = id;
    live.transport = cfg_.use_udp
                         ? std::unique_ptr<net::Transport>(
                               std::make_unique<net::UdpTransport>(udp_host))
                         : mem_net_->transport(id);
    core::NodeConfig ncfg =
        core::make_node_config(cfg_.variant, id, cfg_.fanout);
    ncfg.wk_pull_port = directory_[id].wk_pull_port;
    ncfg.wk_offer_port = directory_[id].wk_offer_port;
    ncfg.wk_pull_reply_port = directory_[id].wk_pull_reply_port;
    ncfg.verify_signatures = cfg_.verify_signatures;
    live.node = std::make_unique<core::Node>(
        ncfg, identities[id], directory_, *live.transport, rng_.next(),
        [this](const core::Node::Delivery& d) { on_delivery(d); });
    nodes_.push_back(std::move(live));
  }

  if (cfg_.reactor) {
    runtime::ReactorConfig rc;
    rc.round = cfg_.round;
    rc.jitter = cfg_.jitter;
    rc.workers = cfg_.workers;
    reactor_ = std::make_unique<runtime::ReactorRuntime>(rc);
    for (auto& live : nodes_) reactor_->add_node(*live.node, rng_.next());
  } else {
    runtime::RunnerConfig rc;
    rc.round = cfg_.round;
    rc.jitter = cfg_.jitter;
    for (auto& live : nodes_) {
      live.runner = std::make_unique<runtime::NodeRunner>(*live.node, rc,
                                                          rng_.next());
    }
  }
}

Swarm::~Swarm() { stop(); }

void Swarm::on_delivery(const core::Node::Delivery& d) {
  delivered_.fetch_add(1, std::memory_order_relaxed);
  if (!measuring_.load(std::memory_order_relaxed)) return;
  if (d.msg.payload.size() < 8) return;
  const auto sent =
      static_cast<std::int64_t>(get_u64(d.msg.payload.data()));
  const std::int64_t lat = now_us() - sent;
  if (lat < 0) return;
  std::lock_guard<std::mutex> lock(lat_mu_);
  latency_ms_.add(static_cast<double>(lat) / 1000.0);
}

void Swarm::start() {
  if (started_) return;
  started_ = true;
  if (reactor_) {
    reactor_->start();
  } else {
    for (auto& live : nodes_) live.runner->start();
  }
  if (!victims_.empty()) {
    attacker_stop_.store(false);
    attacker_ = std::thread([this] { attacker_main(); });
  }
}

void Swarm::stop() {
  if (!started_) return;
  started_ = false;
  attacker_stop_.store(true);
  if (attacker_.joinable()) attacker_.join();
  if (reactor_) {
    reactor_->stop();
  } else {
    for (auto& live : nodes_) live.runner->stop();
  }
}

void Swarm::run_for(std::chrono::milliseconds d) {
  DRUM_REQUIRE(started_, "run_for before start()");
  rusage ru0{};
  ::getrusage(RUSAGE_SELF, &ru0);
  const auto t0 = Clock::now();
  const auto end = t0 + d;
  measuring_.store(true);

  util::Bytes payload(cfg_.payload_size);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng_.below(256));
  const auto send_interval =
      std::chrono::duration_cast<Clock::duration>(cfg_.round) /
      static_cast<std::int64_t>(std::max<std::size_t>(1, cfg_.rate));
  auto next_send = t0;
  while (Clock::now() < end) {
    put_u64(payload.data(), static_cast<std::uint64_t>(now_us()));
    if (reactor_) {
      reactor_->multicast(0, util::ByteSpan(payload));
    } else {
      nodes_[0].runner->multicast(util::ByteSpan(payload));
    }
    next_send += send_interval;
    std::this_thread::sleep_until(std::min(next_send, end));
  }

  measuring_.store(false);
  rusage ru1{};
  ::getrusage(RUSAGE_SELF, &ru1);
  wall_s_ += std::chrono::duration<double>(Clock::now() - t0).count();
  cpu_user_s_ += tv_to_s(ru1.ru_utime) - tv_to_s(ru0.ru_utime);
  cpu_sys_s_ += tv_to_s(ru1.ru_stime) - tv_to_s(ru0.ru_stime);
}

void Swarm::attacker_main() {
  // Thread-confined RNG; the golden-ratio offset decorrelates it from the
  // construction-time stream without reseeding the swarm.
  util::Rng arng(cfg_.seed ^ 0x9E3779B97F4A7C15ull);
  std::unique_ptr<net::Transport> tr;
  std::unique_ptr<net::Socket> sock;
  if (cfg_.use_udp) {
    tr = std::make_unique<net::UdpTransport>(net::parse_ipv4("127.0.0.1"));
    sock = tr->bind(0).take();
    if (!sock) return;
  }

  const auto bursts =
      std::max<std::size_t>(1, cfg_.attacker_bursts_per_round);
  const auto gap = std::chrono::duration_cast<Clock::duration>(cfg_.round) /
                   static_cast<std::int64_t>(bursts);
  const double per_burst = cfg_.x / static_cast<double>(bursts);
  std::uint64_t seq = 0;

  // Per-victim scratch, grouped by destination port so the UDP path ships
  // each group in one sendmmsg.
  struct Group {
    net::Address target;
    std::vector<util::Bytes> payloads;
    std::vector<util::ByteSpan> spans;
  };
  std::vector<Group> groups(3);

  while (!attacker_stop_.load()) {
    const auto burst_start = Clock::now();
    for (auto victim : victims_) {
      const core::Peer& p = directory_[victim];
      auto count = static_cast<std::size_t>(per_burst);
      if (arng.chance(per_burst - static_cast<double>(count))) ++count;
      for (auto& g : groups) {
        g.payloads.clear();
        g.spans.clear();
      }
      groups[0].target = {p.host, p.wk_offer_port};
      groups[1].target = {p.host, p.wk_pull_port};
      groups[2].target = {p.host, p.wk_pull_reply_port};
      for (std::size_t i = 0; i < count; ++i) {
        util::Bytes garbage_box(crypto::kPortBoxOverhead + 2);
        for (auto& b : garbage_box) {
          b = static_cast<std::uint8_t>(arng.below(256));
        }
        auto fake_sender = static_cast<std::uint32_t>(arng.below(cfg_.n));
        const std::uint64_t k = seq++;
        std::size_t slot;
        util::Bytes payload;
        switch (cfg_.variant) {
          case core::Variant::kPush:
            slot = 0;
            break;
          case core::Variant::kPull:
            slot = 1;
            break;
          case core::Variant::kDrumWkPorts:
            // x/2 push, x/4 pull-request, x/4 pull-reply port (paper §9).
            slot = k % 4 < 2 ? 0 : (k % 4 == 2 ? 1 : 2);
            break;
          case core::Variant::kDrum:
          case core::Variant::kDrumSharedBounds:
          default:
            slot = k % 2;
            break;
        }
        if (slot == 0) {
          core::PushOffer offer;
          offer.sender = fake_sender;
          offer.boxed_reply_port = garbage_box;
          payload = core::encode(offer);
        } else if (slot == 1) {
          core::PullRequest req;
          req.sender = fake_sender;
          req.boxed_reply_port = garbage_box;
          payload = core::encode(req);
        } else {
          payload = core::encode(core::PullReply{fake_sender, {}});
        }
        groups[slot].payloads.push_back(std::move(payload));
      }
      for (auto& g : groups) {
        if (g.payloads.empty()) continue;
        if (mem_net_) {
          for (const auto& pl : g.payloads) {
            net::Address spoofed{
                0xDEAD0000u | static_cast<std::uint32_t>(arng.below(65536)),
                static_cast<std::uint16_t>(1024 + arng.below(60000))};
            mem_net_->send_raw(spoofed, g.target, util::ByteSpan(pl));
          }
        } else {
          g.spans.reserve(g.payloads.size());
          for (const auto& pl : g.payloads) g.spans.emplace_back(pl);
          sock->send_batch(g.target, g.spans.data(), g.spans.size());
        }
        attack_sent_.fetch_add(g.payloads.size(), std::memory_order_relaxed);
      }
    }
    std::this_thread::sleep_until(burst_start + gap);
  }
}

SwarmReport Swarm::report() const {
  SwarmReport r;
  r.nodes = nodes_.size();
  r.threads = cfg_.reactor ? 1 + cfg_.workers : nodes_.size();
  r.wall_s = wall_s_;
  r.cpu_user_s = cpu_user_s_;
  r.cpu_sys_s = cpu_sys_s_;
  obs::MetricsRegistry merged;
  for (const auto& live : nodes_) merged.merge(live.node->registry());
  r.rounds = merged.counter_value("runner.ticks");
  r.polls = merged.counter_value("runner.polls");
  r.delivered = merged.counter_value("node.delivered");
  r.attack_datagrams = attack_sent_.load();
  {
    std::lock_guard<std::mutex> lock(lat_mu_);
    r.latency_samples = latency_ms_.count();
    r.latency_ms_mean = latency_ms_.mean();
    r.latency_ms_p50 = latency_ms_.percentile(0.50);
    r.latency_ms_p90 = latency_ms_.percentile(0.90);
    r.latency_ms_p99 = latency_ms_.percentile(0.99);
  }
  if (reactor_) r.loop_metrics_json = reactor_->loop_registry().to_json();
  return r;
}

}  // namespace drum::harness
