// Measurement harness: runs an n-node cluster of real protocol nodes with
// unsynchronized jittered rounds, a DoS attack injector, and a multicast
// workload — the reproduction of the paper's §8 Emulab experiments.
//
// Substitutions vs the paper (see DESIGN.md §6): all nodes live in one OS
// process; the "LAN" is either the deterministic in-memory transport
// (default) or real loopback UDP sockets (use_udp); the clock is virtual —
// the event loop fires each node's jittered round ticks, the attacker's
// bursts, and the source's transmissions in timestamp order and polls nodes
// in between, so a 100-round experiment takes CPU time, not wall time.
//
// Adversary model (paper §5, §7): a malicious_fraction of the group appears
// in every directory but runs no node (their gossip is wasted, as in the
// paper); the attack injector sends each attacked process x fabricated
// messages per round, split across its well-known ports according to the
// protocol variant, with spoofed source addresses.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "drum/core/config.hpp"
#include "drum/core/node.hpp"
#include "drum/net/mem_transport.hpp"
#include "drum/obs/export.hpp"
#include "drum/obs/metrics.hpp"
#include "drum/obs/trace.hpp"
#include "drum/util/rng.hpp"
#include "drum/util/stats.hpp"

namespace drum::harness {

struct ClusterConfig {
  core::Variant variant = core::Variant::kDrum;
  std::size_t n = 50;               ///< group size (directory entries)
  double malicious_fraction = 0.1;  ///< adversary-controlled members
  double alpha = 0.0;               ///< attacked fraction of the group
  double x = 0.0;                   ///< fabricated msgs per victim per round
  std::size_t fanout = 4;
  double loss = 0.0;                ///< transport loss (LAN: ~0)
  std::uint64_t seed = 1;
  std::int64_t round_us = 100'000;  ///< round duration (paper: 1 s; scaled)
  double round_jitter = 0.2;        ///< +/- fraction of round duration
  std::size_t rate = 40;            ///< source msgs per round
  std::size_t payload_size = 50;    ///< bytes (paper §8.2)
  bool use_udp = false;             ///< real loopback UDP instead of mem net
  /// One-way delivery latency on the in-memory LAN (virtual µs). Must be
  /// well below round_us (paper model: latency < half the gossip period)
  /// but above the flood's inter-packet gap so handshakes genuinely contend
  /// with the flood. Ignored in UDP mode.
  std::int64_t latency_us = 1000;
  bool verify_signatures = true;
  /// §4 ablation: keep (rather than discard) unread datagrams at round end.
  bool discard_unread = true;
  /// The real attacker floods continuously; finer bursts approximate that
  /// (coarse bursts leave an artificial clean window right after each
  /// victim's round tick).
  std::size_t attacker_bursts_per_round = 50;
  std::uint16_t udp_base_port = 21000;  ///< well-known port plan for UDP
  /// Per-node gossip trace ring capacity; 0 (default) disables tracing.
  std::size_t trace_capacity = 0;
};

/// Aggregated observations. "Latency" is virtual time (µs) from multicast
/// to delivery; "hops" is the paper's per-message round counter.
struct ClusterMetrics {
  /// Per correct non-source node: messages delivered inside the measurement
  /// window, and mean delivery latency.
  struct PerNode {
    std::uint32_t id = 0;
    bool attacked = false;
    std::uint64_t delivered = 0;
    util::RunningStats latency_us;
    util::RunningStats hops;
  };
  std::vector<PerNode> nodes;

  /// Per tracked message that reached >= 99% of correct receivers: the max
  /// round counter at crossing (propagation time in rounds) and the virtual
  /// time it took.
  util::Samples propagation_rounds;
  util::Samples propagation_us;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_completed = 0;  ///< reached the 99% threshold
  std::int64_t window_us = 0;            ///< measurement window length

  /// Mean received throughput (messages per second of virtual time) over
  /// correct non-source nodes.
  [[nodiscard]] double mean_throughput_msgs_per_sec() const;
  [[nodiscard]] double mean_latency_ms() const;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Advances virtual time. workload=true has the source multicast at the
  /// configured rate during the period. Metrics accumulate only between
  /// begin_measurement()/end_measurement().
  void run_for_us(std::int64_t duration_us, bool workload);

  /// Convenience: rounds instead of µs.
  void run_rounds(double rounds, bool workload) {
    run_for_us(static_cast<std::int64_t>(rounds * static_cast<double>(
                                                      cfg_.round_us)),
               workload);
  }

  void begin_measurement();
  void end_measurement();

  /// Multicasts an explicit payload from the source node and tracks its
  /// propagation like the generated workload (used by bulk-transfer
  /// examples). Returns the message id.
  core::MessageId multicast_from_source(util::ByteSpan payload);

  [[nodiscard]] const ClusterMetrics& metrics() const { return metrics_; }
  [[nodiscard]] const ClusterConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint32_t source_id() const { return source_; }
  [[nodiscard]] std::size_t correct_count() const { return nodes_.size(); }
  [[nodiscard]] bool is_attacked(std::uint32_t id) const;
  [[nodiscard]] const core::Node& node(std::size_t i) const {
    return *nodes_[i].node;
  }
  /// The node's trace ring; nullptr unless cfg.trace_capacity > 0.
  [[nodiscard]] const obs::TraceRing* trace(std::size_t i) const {
    return nodes_[i].trace.get();
  }

  /// drum::check invariants over the harness: node_index_ is a bijection
  /// onto live nodes, victims and the source are correct (instantiated)
  /// members, every armed round tick lies in the future, and tracked
  /// messages never record more deliveries than there are receivers.
  /// Called at construction and after every run_for_us(); no-op in Release.
  void check_invariants() const;

  /// Which nodes a merged registry covers.
  enum class NodeSet { kAll, kAttacked, kNonAttacked };
  /// Folds the selected nodes' metric registries (counters, per-channel
  /// budget histograms, runner telemetry) into one experiment-wide view.
  [[nodiscard]] obs::MetricsRegistry merged_registry(
      NodeSet set = NodeSet::kAll) const;
  /// Network-layer metrics (drops by cause, queue depth). Shared by all
  /// nodes; empty until traffic has flowed.
  [[nodiscard]] const obs::MetricsRegistry& net_registry() const {
    return net_registry_;
  }

  /// One JSON document for the whole experiment: the config, the
  /// all/attacked/non-attacked merged registries, the network registry, and
  /// flat per-node counters. The machine-readable artifact bench binaries
  /// write next to their printed tables.
  [[nodiscard]] std::string metrics_json() const;
  /// Writes metrics_json() to `path`; returns false on I/O failure.
  bool write_metrics_json(const std::string& path) const;

  /// Per-round progression sampled during the measurement window: columns
  /// round, t_us, delivered, flushed_unread, net_dropped (cumulative).
  [[nodiscard]] const obs::TimeSeries& timeseries() const { return series_; }

 private:
  struct LiveNode {
    std::uint32_t id;
    std::unique_ptr<net::Transport> transport;
    std::unique_ptr<core::Node> node;
    std::unique_ptr<obs::TraceRing> trace;  // null unless tracing enabled
    std::int64_t next_tick_us;
  };

  struct TrackedMessage {
    std::int64_t sent_us;
    std::size_t deliveries = 0;
    std::uint32_t max_hops = 0;
    bool completed = false;
    bool in_window = false;
  };

  void fire_attacker_burst();
  void fire_workload();
  void on_delivery(std::uint32_t node_id, const core::Node::Delivery& d);
  std::int64_t jittered_round(util::Rng& rng) const;
  void maybe_sample_series();

  ClusterConfig cfg_;
  util::Rng rng_;
  std::unique_ptr<net::MemNetwork> mem_net_;  // null in UDP mode
  std::vector<core::Peer> directory_;
  std::vector<LiveNode> nodes_;
  std::vector<std::uint32_t> victims_;  // attacked node ids
  std::uint32_t source_ = 0;
  std::size_t n_malicious_ = 0;

  std::int64_t now_us_ = 0;
  std::int64_t next_burst_us_ = 0;
  std::int64_t next_send_us_ = 0;
  bool measuring_ = false;
  std::int64_t measure_start_us_ = 0;
  std::int64_t next_sample_us_ = 0;
  obs::MetricsRegistry net_registry_;
  obs::TimeSeries series_;

  std::map<core::MessageId, TrackedMessage> tracked_;
  std::map<std::uint32_t, std::size_t> node_index_;  // id -> nodes_ index
  ClusterMetrics metrics_;
  std::size_t completion_threshold_ = 0;
  std::uint64_t attacker_seq_ = 0;
};

}  // namespace drum::harness
