#!/usr/bin/env bash
# Lint gate: clang-tidy (when installed) + the repo-specific checker.
#
# Usage: scripts/lint.sh [build-dir]
#
# clang-tidy reads the configuration from .clang-tidy at the repo root and
# needs a compile_commands.json; we configure a throwaway build dir with
# CMAKE_EXPORT_COMPILE_COMMANDS for it (default: build-lint/). On boxes
# without clang-tidy (e.g. the gcc-only CI image) that stage is skipped
# with a warning — scripts/drum_lint.py always runs and gates.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-lint}"
STATUS=0

if command -v clang-tidy >/dev/null 2>&1; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  # Headers are covered via the TUs that include them (HeaderFilterRegex).
  mapfile -t SOURCES < <(find src fuzz -name '*.cpp' | sort)
  if ! clang-tidy -p "$BUILD_DIR" --quiet "${SOURCES[@]}"; then
    STATUS=1
  fi
else
  echo "lint.sh: clang-tidy not found — skipping (gcc-only image);" \
       "drum_lint still gates" >&2
fi

if ! python3 scripts/drum_lint.py; then
  STATUS=1
fi

if [ "$STATUS" -ne 0 ]; then
  echo "lint.sh: FAILED" >&2
  exit 1
fi
echo "lint.sh: clean"
