#!/usr/bin/env python3
"""drum_lint — repo-specific static checks clang-tidy cannot express.

Checks run over src/, fuzz/, examples/, bench/, tools/, tests/ after
stripping comments and string literals (line numbers are preserved):

  naked-new        No `new` expressions. Ownership flows through
                   std::make_unique / containers; a naked new is either a
                   leak or a hand-rolled owner.
  libc-rand        No std::rand / srand / bare rand(). All randomness must
                   flow through util::Rng so every run is seed-reproducible
                   (the fuzzers and the simulator depend on it).
  unbounded-decode Any function that both reads wire integers (ByteReader
                   read_*) and sizes a container (reserve/resize) must
                   reference a max_* bound AND DecodeError: a fabricated
                   length field must hit a cap, not an allocation (the
                   paper's memory-DoS surface).
  raw-mutex        No std::mutex / std::shared_mutex / std::lock_guard /
                   std::unique_lock / std::scoped_lock / std::shared_lock /
                   std::condition_variable, and no #include <mutex> or
                   <shared_mutex>, outside drum/check/annotations.hpp.
                   The tree locks through the drum::check capability
                   wrappers (Mutex, MutexLock, ...) so Clang's
                   -Wthread-safety analysis sees every acquisition
                   (DESIGN.md §11). condition_variable_any is fine — it
                   waits on a MutexLock.
  naked-lock       No direct .lock()/.unlock()/.try_lock()/_shared calls
                   outside annotations.hpp. Locking is RAII-only: a naked
                   unlock is exactly the early-release pattern the
                   thread-safety analysis cannot prove safe.
  mutex-annotation Every namespace- or member-scope check::Mutex /
                   check::SharedMutex in src/ must have at least one
                   DRUM_GUARDED_BY / DRUM_PT_GUARDED_BY / DRUM_REQUIRES
                   user naming it (same file or the sibling .hpp/.cpp).
                   An unused capability is a lock whose protection story
                   exists only in the author's head. Function-local
                   mutexes can be suppressed with
                   `// drum-lint: allow(mutex-annotation)`.
  single-recv      No one-at-a-time Socket::recv() calls under
                   src/drum/core/ or src/drum/runtime/ — the protocol hot
                   path. The flood charges the victim per datagram; the
                   ingress pipeline (DESIGN.md §12) amortizes that cost
                   only if every hot-path drain goes through recv_batch()
                   (recvmmsg under UDP, one lock per chunk in mem).
                   Transport implementations (src/drum/net/) and the
                   low-rate membership control plane are out of scope.
  shard-affinity   No mutex acquisition — check:: wrappers included — in
                   shard-confined hot paths: the whole of
                   src/drum/util/spsc_ring.hpp (the SPSC ring IS the
                   lock-free alternative), plus any region bracketed by
                   `// drum-lint: shard-local` ... `// drum-lint:
                   shard-local end` (the sharded reactor's per-shard
                   dispatch/drain paths, DESIGN.md §13). A lock inside one
                   of these sections would silently reintroduce the
                   cross-thread serialization the sharding removed.
  sim-determinism  Protects the Monte-Carlo bit-identity contract
                   (DESIGN.md §9): inside src/drum/sim/, every draw from —
                   or handoff of — a main-stream Rng must be either
                   (a) inside a feature-gated block (an if/for whose
                   condition mentions zoo/scoring/attack/adv/greylist —
                   draws that never execute in a baseline run), or
                   (b) marked `// drum-lint: legacy-stream`, meaning it is
                   one of the audited draws the recorded RESULTS baselines
                   consume. The number of legacy-stream sites is frozen
                   (LEGACY_STREAM_SITES below): adding a draw to the
                   legacy stream silently re-randomizes every recorded
                   curve, so the constant must be bumped consciously and
                   the baselines re-blessed. Streams named adv* are exempt
                   — they are fork()-seeded behind a gate (which this
                   check also verifies), so they cannot perturb the
                   baseline stream.

A finding can be suppressed with `// drum-lint: allow(<rule>)` on the same
line (checked before stripping).

Self-tests: `drum_lint.py --self-test` runs every check against known-good
and known-bad snippets and exits nonzero on any mismatch (wired as a ctest).

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SCAN_DIRS = ["src", "fuzz", "examples", "bench", "tools", "tests"]
EXTS = {".cpp", ".hpp", ".cc", ".hh", ".h"}

# The annotated wrappers themselves must use the raw std types and the raw
# lock()/unlock() forwards — everything else must not. Their behavioral test
# probes the same surface (try_lock while held, manual BasicLockable cycles,
# size parity against std::mutex), so both are exempt from the locking
# checks.
ANNOTATIONS_HEADER = "src/drum/check/annotations.hpp"
LOCKING_EXEMPT = {ANNOTATIONS_HEADER, "tests/annotations_test.cpp"}

# Frozen count of `// drum-lint: legacy-stream` sites under src/drum/sim/.
# These are the audited draws/handoffs on the shared baseline Rng stream;
# every recorded RESULTS curve depends on their exact order and count.
# Adding one re-randomizes the baselines: bump this constant in the same
# commit, say why, and re-bless the recorded results.
LEGACY_STREAM_SITES = 20

ALLOW_RE = re.compile(r"//\s*drum-lint:\s*allow\(([a-z-]+)\)")
LEGACY_RE = re.compile(r"//\s*drum-lint:\s*legacy-stream\b")


def strip_code(text: str) -> str:
    """Blanks out comments, string and char literals, preserving newlines
    (so reported line numbers stay correct)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def allowed_lines(raw: str, rule: str) -> set[int]:
    lines = set()
    for lineno, line in enumerate(raw.splitlines(), 1):
        m = ALLOW_RE.search(line)
        if m and m.group(1) == rule:
            lines.add(lineno)
    return lines


class SourceFile:
    """One scanned file: repo-relative path, raw text, stripped text."""

    def __init__(self, rel: str, raw: str):
        self.rel = rel
        self.raw = raw
        self.code = strip_code(raw)

    def allowed(self, rule: str) -> set[int]:
        return allowed_lines(self.raw, rule)


# ---------------------------------------------------------------------------
# shared structural helpers

FUNC_OPEN_RE = re.compile(r"^[^\s#].*\)\s*(?:const\s*)?\{", re.MULTILINE)


def function_bodies(code: str):
    """Yields (start_line, body_text) for top-ish-level function bodies,
    found by brace matching from definition-looking lines."""
    for m in FUNC_OPEN_RE.finditer(code):
        open_idx = code.index("{", m.start())
        depth = 0
        i = open_idx
        while i < len(code):
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        body = code[open_idx:i + 1]
        start_line = code.count("\n", 0, m.start()) + 1
        yield start_line, body


def match_paren(code: str, open_idx: int) -> int:
    """Index of the ')' matching the '(' at open_idx (or len(code))."""
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(code)


def match_brace(code: str, open_idx: int) -> int:
    """Index of the '}' matching the '{' at open_idx (or len(code))."""
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(code)


# ---------------------------------------------------------------------------
# checks

def check_naked_new(files, findings) -> None:
    pat = re.compile(r"(?<![_\w.])new\s+[\w:<(]")
    for f in files:
        ok = f.allowed("naked-new")
        for lineno, line in enumerate(f.code.splitlines(), 1):
            if pat.search(line) and lineno not in ok:
                findings.append(
                    f"{f.rel}:{lineno}: [naked-new] use std::make_unique or "
                    "a container, not a naked new")


def check_libc_rand(files, findings) -> None:
    pat = re.compile(r"(?:std::|(?<![_\w:.]))s?rand\s*\(")
    for f in files:
        ok = f.allowed("libc-rand")
        for lineno, line in enumerate(f.code.splitlines(), 1):
            if pat.search(line) and lineno not in ok:
                findings.append(
                    f"{f.rel}:{lineno}: [libc-rand] use util::Rng (seeded, "
                    "reproducible), not libc rand")


READS_WIRE_RE = re.compile(r"\bread_u(?:8|16|32|64)\b")
SIZES_CONTAINER_RE = re.compile(r"\.(?:reserve|resize)\s*\(")
BOUND_RE = re.compile(r"\bmax_\w+|\bkMax\w+")


def check_bounded_decode(files, findings) -> None:
    for f in files:
        ok = f.allowed("unbounded-decode")
        for start_line, body in function_bodies(f.code):
            if not (READS_WIRE_RE.search(body) and
                    SIZES_CONTAINER_RE.search(body)):
                continue
            if start_line in ok:
                continue
            if not BOUND_RE.search(body):
                findings.append(
                    f"{f.rel}:{start_line}: [unbounded-decode] wire-driven "
                    "reserve/resize without a max_* / kMax* cap")
            elif "DecodeError" not in body:
                findings.append(
                    f"{f.rel}:{start_line}: [unbounded-decode] wire-driven "
                    "allocation must throw DecodeError when the cap is hit")


RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable)\b")
RAW_MUTEX_INCLUDE_RE = re.compile(r"#\s*include\s*<(?:mutex|shared_mutex)>")


def check_raw_mutex(files, findings) -> None:
    for f in files:
        if f.rel in LOCKING_EXEMPT:
            continue
        ok = f.allowed("raw-mutex")
        for lineno, line in enumerate(f.code.splitlines(), 1):
            if lineno in ok:
                continue
            if RAW_MUTEX_RE.search(line) or RAW_MUTEX_INCLUDE_RE.search(line):
                findings.append(
                    f"{f.rel}:{lineno}: [raw-mutex] use the drum::check "
                    "capability wrappers (Mutex/MutexLock/...; "
                    "condition_variable_any for waits) so -Wthread-safety "
                    "sees the acquisition")


NAKED_LOCK_RE = re.compile(
    r"(?:\.|->)\s*(?:try_)?(?:lock|unlock)(?:_shared)?\s*\(\s*\)")


def check_naked_lock(files, findings) -> None:
    for f in files:
        if f.rel in LOCKING_EXEMPT:
            continue
        ok = f.allowed("naked-lock")
        for lineno, line in enumerate(f.code.splitlines(), 1):
            if lineno in ok:
                continue
            for _ in NAKED_LOCK_RE.finditer(line):
                findings.append(
                    f"{f.rel}:{lineno}: [naked-lock] lock with RAII "
                    "(check::MutexLock and friends), never a direct "
                    ".lock()/.unlock()")


MUTEX_DECL_RE = re.compile(
    r"(?:mutable\s+)?(?:check::|drum::check::)(?:Shared)?Mutex\s+"
    r"([A-Za-z_]\w*)\s*(?:;|\{)")


def _mutex_user_re(name: str) -> re.Pattern:
    return re.compile(
        r"DRUM_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|REQUIRES_SHARED|"
        r"ACQUIRE|ACQUIRE_SHARED|RELEASE|RELEASE_SHARED|TRY_ACQUIRE|"
        r"EXCLUDES|ASSERT_CAPABILITY|RETURN_CAPABILITY)"
        r"\s*\([^)]*\b" + re.escape(name) + r"\b[^)]*\)")


def check_mutex_annotation(files, findings) -> None:
    by_stem: dict[str, str] = {}
    for f in files:
        stem = re.sub(r"\.(cpp|hpp|cc|hh|h)$", "", f.rel)
        by_stem[stem] = by_stem.get(stem, "") + "\n" + f.raw
    for f in files:
        if not f.rel.startswith("src/") or f.rel == ANNOTATIONS_HEADER:
            continue
        ok = f.allowed("mutex-annotation")
        stem = re.sub(r"\.(cpp|hpp|cc|hh|h)$", "", f.rel)
        corpus = by_stem[stem]
        for lineno, line in enumerate(f.code.splitlines(), 1):
            m = MUTEX_DECL_RE.search(line)
            if not m or lineno in ok:
                continue
            name = m.group(1)
            if not _mutex_user_re(name).search(corpus):
                findings.append(
                    f"{f.rel}:{lineno}: [mutex-annotation] capability "
                    f"'{name}' has no DRUM_GUARDED_BY / DRUM_REQUIRES user "
                    "— declare what it protects (function-local mutexes: "
                    "suppress with // drum-lint: allow(mutex-annotation))")


SINGLE_RECV_RE = re.compile(r"(?:\.|->)\s*recv\s*\(\s*\)")
SINGLE_RECV_DIRS = ("src/drum/core/", "src/drum/runtime/")


def check_single_recv(files, findings) -> None:
    for f in files:
        if not f.rel.startswith(SINGLE_RECV_DIRS):
            continue
        ok = f.allowed("single-recv")
        for lineno, line in enumerate(f.code.splitlines(), 1):
            if lineno in ok:
                continue
            if SINGLE_RECV_RE.search(line):
                findings.append(
                    f"{f.rel}:{lineno}: [single-recv] one-at-a-time recv() "
                    "on the protocol hot path — drain through recv_batch() "
                    "so the ingress pipeline amortizes the per-datagram "
                    "cost (DESIGN.md §12)")


# --- shard-affinity --------------------------------------------------------

# Files that are shard-local in their entirety.
SHARD_LOCAL_FILES = {"src/drum/util/spsc_ring.hpp"}
SHARD_LOCAL_MARK_RE = re.compile(r"//\s*drum-lint:\s*shard-local(\s+end)?\b")
# Anything that acquires (or is) a mutex: the drum::check capability
# wrappers, the raw std types (redundant with raw-mutex, but this check
# carries its own message), and naked .lock() calls.
SHARD_LOCK_RE = re.compile(
    r"\b(?:drum::)?check::(?:Mutex|SharedMutex|MutexLock|SharedMutexLock|"
    r"SharedLock)\b"
    r"|\bstd::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|condition_variable)\b"
    r"|(?:\.|->)\s*(?:try_)?lock(?:_shared)?\s*\(")


def shard_local_lines(raw: str) -> set[int]:
    """Line numbers inside `// drum-lint: shard-local` ... `shard-local end`
    regions (markers live in comments, so they are read from the raw text)."""
    lines: set[int] = set()
    inside = False
    for lineno, line in enumerate(raw.splitlines(), 1):
        m = SHARD_LOCAL_MARK_RE.search(line)
        if m:
            inside = not m.group(1)  # begin opens, `end` closes
            continue
        if inside:
            lines.add(lineno)
    return lines


def check_shard_affinity(files, findings) -> None:
    for f in files:
        ok = f.allowed("shard-affinity")
        whole_file = f.rel in SHARD_LOCAL_FILES
        region = set() if whole_file else shard_local_lines(f.raw)
        if not whole_file and not region:
            continue
        for lineno, line in enumerate(f.code.splitlines(), 1):
            if lineno in ok:
                continue
            if not whole_file and lineno not in region:
                continue
            if SHARD_LOCK_RE.search(line):
                findings.append(
                    f"{f.rel}:{lineno}: [shard-affinity] mutex acquisition "
                    "in a shard-local section — this path is single-thread-"
                    "confined by construction (DESIGN.md §13); a lock here "
                    "reintroduces cross-shard serialization")


# --- sim-determinism -------------------------------------------------------

DRAW_METHODS = {"chance", "below", "between", "uniform", "normal", "next",
                "fork", "sample_into", "shuffle"}
GATE_WORD_RE = re.compile(r"\b(?:zoo|scoring|attack\w*|adv\w*|greylist\w*)\b")
IDENT_RE = re.compile(r"\b([A-Za-z_]\w*)\b")
DECL_LINE_RE = re.compile(r"util::Rng\b|Rng\s*&")


def _is_rng_name(name: str) -> bool:
    return "rng" in name.lower() or name == "master"


def gated_regions(code: str) -> list[tuple[int, int]]:
    """Char ranges of if/for bodies whose condition mentions a feature-gate
    word — code that a baseline (no attack, no scoring) run never executes,
    so draws inside cannot perturb the legacy stream."""
    regions = []
    for m in re.finditer(r"\b(?:if|for|while)\s*\(", code):
        open_paren = code.index("(", m.start())
        close_paren = match_paren(code, open_paren)
        cond = code[open_paren:close_paren + 1]
        if not GATE_WORD_RE.search(cond):
            continue
        i = close_paren + 1
        while i < len(code) and code[i] in " \t\n":
            i += 1
        if i < len(code) and code[i] == "{":
            regions.append((i, match_brace(code, i)))
        else:  # braceless body: one statement
            end = code.find(";", i)
            regions.append((i, len(code) if end < 0 else end))
    return regions


def check_sim_determinism(files, findings,
                          legacy_budget: int = LEGACY_STREAM_SITES) -> None:
    legacy_sites = 0
    for f in files:
        if "/sim/" not in "/" + f.rel:
            continue
        ok = f.allowed("sim-determinism")
        regions = gated_regions(f.code)
        raw_lines = f.raw.splitlines()
        line_start = [0]
        for line in f.code.splitlines(keepends=True):
            line_start.append(line_start[-1] + len(line))

        for lineno, line in enumerate(f.code.splitlines(), 1):
            if lineno in ok:
                continue
            if DECL_LINE_RE.search(line):
                continue  # declarations / signatures, not draws
            legacy_here = lineno <= len(raw_lines) and LEGACY_RE.search(
                raw_lines[lineno - 1])
            for m in IDENT_RE.finditer(line):
                name = m.group(1)
                if not _is_rng_name(name):
                    continue
                rest = line[m.end():]
                mm = re.match(r"\s*(?:\.|->)\s*(\w+)\s*\(", rest)
                if mm:
                    if mm.group(1) not in DRAW_METHODS:
                        continue  # .reserve(), .push_back(), ...
                elif not re.match(r"\s*[,)]", rest):
                    continue  # not a draw, not an argument handoff
                if "adv" in name.lower():
                    continue  # forked adversary stream (seeding checked below)
                pos = line_start[lineno - 1] + m.start()
                if any(lo <= pos <= hi for lo, hi in regions):
                    continue  # feature-gated: never runs in a baseline trial
                if legacy_here:
                    legacy_sites += 1
                    continue
                findings.append(
                    f"{f.rel}:{lineno}: [sim-determinism] draw/handoff of "
                    f"main-stream Rng '{name}' outside a feature gate — new "
                    "randomness must come from a gated fork() (adv_* "
                    "pattern) or be consciously added to the frozen legacy "
                    "stream (// drum-lint: legacy-stream + bump "
                    "LEGACY_STREAM_SITES)")
                break  # one finding per line is enough

        # adversary streams must be seeded (forked) only behind a gate —
        # an unconditional fork would itself advance the legacy stream.
        for m in re.finditer(r"\b(\w*adv\w*)\s*=\s*\w+\s*\.\s*fork\s*\(",
                             f.code):
            lineno = f.code.count("\n", 0, m.start()) + 1
            if lineno in ok:
                continue
            if not any(lo <= m.start() <= hi for lo, hi in regions):
                findings.append(
                    f"{f.rel}:{lineno}: [sim-determinism] adversary stream "
                    f"'{m.group(1)}' forked outside a feature gate — the "
                    "fork itself is a draw on the legacy stream")

    if legacy_sites != legacy_budget:
        findings.append(
            f"src/drum/sim: [sim-determinism] {legacy_sites} legacy-stream "
            f"site(s), expected {legacy_budget} (LEGACY_STREAM_SITES) — the "
            "audited draw set changed; if intentional, bump the constant in "
            "scripts/drum_lint.py and re-bless the recorded baselines")


# ---------------------------------------------------------------------------
# registry + self-tests
#
# Each self-test is (files: {relpath: source}, expected: number of findings).
# Cases cover one known-bad and one known-good snippet per rule, plus the
# suppression syntax, so a regression in a check fails ctest before it lets
# a real violation through.

CHECKS = [
    ("naked-new", check_naked_new, [
        ({"src/a.cpp": "void f() { auto* p = new int(3); }\n"}, 1),
        ({"src/a.cpp": "void f() { auto p = std::make_unique<int>(3); }\n"},
         0),
        ({"src/a.cpp":
          "void f() { new int; }  // drum-lint: allow(naked-new)\n"}, 0),
    ]),
    ("libc-rand", check_libc_rand, [
        ({"src/a.cpp": "int f() { return std::rand(); }\n"}, 1),
        ({"src/a.cpp": "int f(util::Rng& r) { return r.next(); }\n"}, 0),
    ]),
    ("unbounded-decode", check_bounded_decode, [
        ({"src/a.cpp":
          "void f(ByteReader& r, std::vector<int>& v) {\n"
          "  v.resize(r.read_u32());\n}\n"}, 1),
        ({"src/a.cpp":
          "void f(ByteReader& r, std::vector<int>& v) {\n"
          "  auto n = r.read_u32();\n"
          "  if (n > kMaxPeers) throw DecodeError(\"cap\");\n"
          "  v.resize(n);\n}\n"}, 0),
    ]),
    ("raw-mutex", check_raw_mutex, [
        ({"src/a.hpp": "#include <mutex>\nstd::mutex m_;\n"}, 2),
        ({"src/a.hpp": "std::condition_variable cv_;\n"}, 1),
        ({"src/a.hpp":
          "#include \"drum/check/annotations.hpp\"\n"
          "check::Mutex m_;\nstd::condition_variable_any cv_;\n"
          "int x_ DRUM_GUARDED_BY(m_);\n"}, 0),
        ({"src/a.hpp":
          "std::mutex m_;  // drum-lint: allow(raw-mutex)\n"}, 0),
    ]),
    ("naked-lock", check_naked_lock, [
        ({"src/a.cpp": "void f() { mu_.lock(); mu_.unlock(); }\n"}, 2),
        ({"src/a.cpp": "void f() { check::MutexLock l(mu_); }\n"}, 0),
        ({"src/a.cpp":
          "void f() { mu_.lock(); }  // drum-lint: allow(naked-lock)\n"}, 0),
    ]),
    ("mutex-annotation", check_mutex_annotation, [
        ({"src/a.hpp": "class C {\n  check::Mutex mu_;\n  int x_ = 0;\n};\n"},
         1),
        ({"src/a.hpp":
          "class C {\n  check::Mutex mu_;\n"
          "  int x_ DRUM_GUARDED_BY(mu_) = 0;\n};\n"}, 0),
        # user in the sibling .cpp counts
        ({"src/a.hpp": "class C {\n  check::Mutex mu_;\n  void g();\n};\n",
          "src/a.cpp": "void C::g() DRUM_REQUIRES(mu_) {}\n"}, 0),
        ({"src/a.cpp":
          "void f() {\n"
          "  check::Mutex local;  // drum-lint: allow(mutex-annotation)\n"
          "}\n"}, 0),
        # outside src/ the rule does not apply (tests hold locals)
        ({"tests/a.cpp": "check::Mutex mu;\n"}, 0),
    ]),
    ("single-recv", check_single_recv, [
        # one-at-a-time drain in the hot path: finding
        ({"src/drum/core/a.cpp":
          "void f(Socket& s) { while (auto d = s.recv()) {} }\n"}, 1),
        ({"src/drum/runtime/a.cpp":
          "void f(Socket* s) { auto d = s->recv(); }\n"}, 1),
        # batched drain: clean
        ({"src/drum/core/a.cpp":
          "void f(Socket& s, Datagram* out) { s.recv_batch(out, 64); }\n"},
         0),
        # transports and the membership control plane are out of scope
        ({"src/drum/net/a.cpp":
          "void f(Socket& s) { while (auto d = s.recv()) {} }\n"}, 0),
        ({"src/drum/membership/a.cpp":
          "void f(Socket& s) { while (auto d = s.recv()) {} }\n"}, 0),
        # suppression syntax
        ({"src/drum/core/a.cpp":
          "void f(Socket& s) { s.recv(); }  "
          "// drum-lint: allow(single-recv)\n"}, 0),
    ]),
    ("shard-affinity", check_shard_affinity, [
        # the ring header is shard-local in its entirety
        ({"src/drum/util/spsc_ring.hpp":
          "void f(check::Mutex& m) { check::MutexLock l(m); }\n"}, 1),
        ({"src/drum/util/spsc_ring.hpp":
          "void f() { std::lock_guard<std::mutex> l(mu_); }\n"}, 1),
        ({"src/drum/util/spsc_ring.hpp":
          "void f(std::atomic<int>& a) { a.store(1); }\n"}, 0),
        # marked region in any file: lock inside flagged, outside clean
        ({"src/drum/runtime/r.cpp":
          "void f(check::Mutex& m) {\n"
          "  // drum-lint: shard-local\n"
          "  check::MutexLock bad(m);\n"
          "  // drum-lint: shard-local end\n"
          "  check::MutexLock fine(m);\n}\n"}, 1),
        # naked .lock() counts as an acquisition too
        ({"src/drum/runtime/r.cpp":
          "void f() {\n"
          "  // drum-lint: shard-local\n"
          "  mu_.lock();\n"
          "  // drum-lint: shard-local end\n}\n"}, 1),
        # unmarked files are out of scope
        ({"src/drum/runtime/r.cpp":
          "void f(check::Mutex& m) { check::MutexLock l(m); }\n"}, 0),
        # suppression syntax
        ({"src/drum/util/spsc_ring.hpp":
          "void f(check::Mutex& m) { check::MutexLock l(m); }  "
          "// drum-lint: allow(shard-affinity)\n"}, 0),
    ]),
    ("sim-determinism", check_sim_determinism, [
        # ungated, unannotated draw on the main stream: finding
        ({"src/drum/sim/x.cpp": "void f(util::Rng& rng) {\n"
          "  rng.chance(0.5);\n}\n"}, 1),
        # feature-gated draw: clean
        ({"src/drum/sim/x.cpp": "void f(util::Rng& rng, bool zoo) {\n"
          "  if (zoo) {\n    rng.chance(0.5);\n  }\n}\n"}, 0),
        # audited legacy site with matching budget: clean
        ({"src/drum/sim/x.cpp": "void f(util::Rng& rng) {\n"
          "  rng.chance(0.5);  // drum-lint: legacy-stream\n}\n"}, 0),
        # handoff (passing the stream into a helper) counts as a draw
        ({"src/drum/sim/x.cpp": "void f(util::Rng& rng) {\n"
          "  helper(1, rng);\n}\n"}, 1),
        # adversary stream forked inside a gate: clean
        ({"src/drum/sim/x.cpp":
          "void f(util::Rng& rng, bool zoo) {\n"
          "  util::Rng adv_rng(0);\n"
          "  if (zoo) {\n    adv_rng = rng.fork();\n  }\n"
          "  adv_rng.chance(0.5);\n}\n"}, 0),
        # adversary stream forked unconditionally: two findings — the
        # ungated rng.fork() draw itself, and the ungated adv seeding
        ({"src/drum/sim/x.cpp":
          "void f(util::Rng& rng) {\n"
          "  util::Rng adv_rng(0);\n"
          "  adv_rng = rng.fork();\n}\n"}, 2),
        # outside sim/ the rule does not apply
        ({"src/drum/core/x.cpp": "void f(util::Rng& rng) {\n"
          "  rng.chance(0.5);\n}\n"}, 0),
    ]),
]


def run_checks(files: list[SourceFile]) -> list[str]:
    findings: list[str] = []
    for _, fn, _ in CHECKS:
        fn(files, findings)
    return findings


def self_test() -> int:
    failures = 0
    for name, fn, cases in CHECKS:
        for i, (vfiles, expected) in enumerate(cases):
            files = [SourceFile(rel, text) for rel, text in vfiles.items()]
            findings: list[str] = []
            if fn is check_sim_determinism:
                # Virtual trees carry their own audited-site count.
                budget = sum(
                    len(LEGACY_RE.findall(text)) for text in vfiles.values())
                fn(files, findings, legacy_budget=budget)
            else:
                fn(files, findings)
            if len(findings) != expected:
                failures += 1
                print(f"SELF-TEST FAIL [{name} #{i}]: expected {expected} "
                      f"finding(s), got {len(findings)}:")
                for f in findings:
                    print(f"    {f}")
    total = sum(len(cases) for _, _, cases in CHECKS)
    status = "FAILED" if failures else "passed"
    print(f"drum_lint --self-test: {total - failures}/{total} cases {status}")
    return 1 if failures else 0


def main() -> int:
    if len(sys.argv) > 1:
        if sys.argv[1] == "--self-test":
            return self_test()
        print(__doc__)
        return 2
    root = Path(__file__).resolve().parent.parent
    files: list[SourceFile] = []
    for d in SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in EXTS:
                continue
            raw = path.read_text(encoding="utf-8", errors="replace")
            files.append(SourceFile(str(path.relative_to(root)), raw))
    findings = run_checks(files)
    for f in findings:
        print(f)
    print(f"drum_lint: {len(files)} files scanned, "
          f"{len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
