#!/usr/bin/env python3
"""drum_lint — small repo-specific checks clang-tidy cannot express.

Rules (scanned over src/, fuzz/, examples/, bench/, tools/, tests/ after
stripping comments and string literals):

  naked-new      No `new` expressions. Ownership flows through
                 std::make_unique / containers; a naked new is either a leak
                 or a hand-rolled owner.
  libc-rand      No std::rand / srand / bare rand(). All randomness must
                 flow through util::Rng so every run is seed-reproducible
                 (the fuzzers and the simulator depend on it).
  unbounded-decode
                 Any function that both reads wire integers (ByteReader
                 read_*) and sizes a container (reserve/resize) must
                 reference a max_* bound AND DecodeError: a fabricated
                 length field must hit a cap, not an allocation (the
                 paper's memory-DoS surface).

A finding can be suppressed with `// drum-lint: allow(<rule>)` on the same
line (checked before stripping).

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SCAN_DIRS = ["src", "fuzz", "examples", "bench", "tools", "tests"]
EXTS = {".cpp", ".hpp", ".cc", ".hh", ".h"}

ALLOW_RE = re.compile(r"//\s*drum-lint:\s*allow\(([a-z-]+)\)")


def strip_code(text: str) -> str:
    """Blanks out comments, string and char literals, preserving newlines
    (so reported line numbers stay correct)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def allowed_lines(raw: str, rule: str) -> set[int]:
    lines = set()
    for lineno, line in enumerate(raw.splitlines(), 1):
        m = ALLOW_RE.search(line)
        if m and m.group(1) == rule:
            lines.add(lineno)
    return lines


NAKED_NEW_RE = re.compile(r"(?<![_\w.])new\s+[\w:<(]")
LIBC_RAND_RE = re.compile(r"(?:std::|(?<![_\w:.]))s?rand\s*\(")


def check_tokens(path: Path, raw: str, code: str, findings: list[str]) -> None:
    new_ok = allowed_lines(raw, "naked-new")
    rand_ok = allowed_lines(raw, "libc-rand")
    for lineno, line in enumerate(code.splitlines(), 1):
        if NAKED_NEW_RE.search(line) and lineno not in new_ok:
            findings.append(
                f"{path}:{lineno}: [naked-new] use std::make_unique or a "
                "container, not a naked new")
        if LIBC_RAND_RE.search(line) and lineno not in rand_ok:
            findings.append(
                f"{path}:{lineno}: [libc-rand] use util::Rng (seeded, "
                "reproducible), not libc rand")


FUNC_OPEN_RE = re.compile(r"^[^\s#].*\)\s*(?:const\s*)?\{", re.MULTILINE)
READS_WIRE_RE = re.compile(r"\bread_u(?:8|16|32|64)\b")
SIZES_CONTAINER_RE = re.compile(r"\.(?:reserve|resize)\s*\(")
BOUND_RE = re.compile(r"\bmax_\w+|\bkMax\w+")


def function_bodies(code: str):
    """Yields (start_line, body_text) for top-ish-level function bodies,
    found by brace matching from definition-looking lines."""
    for m in FUNC_OPEN_RE.finditer(code):
        open_idx = code.index("{", m.start())
        depth = 0
        i = open_idx
        while i < len(code):
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        body = code[open_idx:i + 1]
        start_line = code.count("\n", 0, m.start()) + 1
        yield start_line, body


def check_bounded_decode(path: Path, raw: str, code: str,
                         findings: list[str]) -> None:
    ok = allowed_lines(raw, "unbounded-decode")
    for start_line, body in function_bodies(code):
        if not (READS_WIRE_RE.search(body) and
                SIZES_CONTAINER_RE.search(body)):
            continue
        if start_line in ok:
            continue
        if not BOUND_RE.search(body):
            findings.append(
                f"{path}:{start_line}: [unbounded-decode] wire-driven "
                "reserve/resize without a max_* / kMax* cap")
        elif "DecodeError" not in body:
            findings.append(
                f"{path}:{start_line}: [unbounded-decode] wire-driven "
                "allocation must throw DecodeError when the cap is hit")


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    findings: list[str] = []
    scanned = 0
    for d in SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in EXTS:
                continue
            raw = path.read_text(encoding="utf-8", errors="replace")
            code = strip_code(raw)
            rel = path.relative_to(root)
            check_tokens(rel, raw, code, findings)
            check_bounded_decode(rel, raw, code, findings)
            scanned += 1
    for f in findings:
        print(f)
    print(f"drum_lint: {scanned} files scanned, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
