#!/usr/bin/env bash
# Regenerates every result in EXPERIMENTS.md from scratch.
#
#   scripts/reproduce.sh           # default run counts (minutes)
#   RUNS=1000 scripts/reproduce.sh # the paper's full Monte-Carlo depth
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS="${RUNS:-}"
EXTRA=()
if [[ -n "$RUNS" ]]; then EXTRA+=(--runs "$RUNS"); fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/fig* build/bench/asymptotics build/bench/ablations; do
    echo "##### $(basename "$b")"
    case "$b" in
      # asymptotics takes no --runs flag
      *asymptotics*) "$b" ;;
      *) "$b" "${EXTRA[@]}" ;;
    esac
    echo
  done
  echo "##### microbench"
  build/bench/microbench --benchmark_min_time=0.2
} 2>&1 | tee bench_output.txt
