#!/usr/bin/env bash
# Sanitizer gate: configure + build + ctest with ASan/UBSan (DRUM_SANITIZE).
# Usage: scripts/check.sh [build-dir] — default build-asan, kept separate
# from the regular build/ tree so the two caches never fight.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-asan}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDRUM_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
echo "check.sh: all tests passed under address+undefined sanitizers"
