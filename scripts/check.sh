#!/usr/bin/env bash
# Sanitizer gate: configure + build + ctest under sanitizers, with the
# drum::check contract macros compiled in (DRUM_CHECKED=ON).
#
# Usage: scripts/check.sh [asan|tsan|ubsan|all]     (default: all)
#
#   asan  — AddressSanitizer + UndefinedBehaviorSanitizer: lifetime,
#           bounds, aliasing, UB. Build dir: build-asan/.
#   tsan  — ThreadSanitizer: races on the NodeRunner / ReactorRuntime /
#           EventLoop / MemNetwork / contract-layer paths
#           (tests/stress_test.cpp hammers them, including the reactor's
#           loop-thread + worker-pool + readiness-bridge handoffs in
#           Stress.ReactorConcurrentMulticastFloodAndChurn).
#           Build dir: build-tsan/.
#   ubsan — UBSan alone, non-recoverable (-fno-sanitize-recover=all): any
#           finding aborts the test instead of printing and continuing.
#           Catches what the asan leg tolerates, and clang adds the
#           `integer` group. Build dir: build-ubsan/.
#   all   — all three, in sequence.
#
# Each mode keeps its own build tree so the caches never fight (TSan and
# ASan cannot share objects). JOBS=<n> overrides the build parallelism.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-all}"
JOBS="${JOBS:-$(nproc)}"

run_mode() {
  local mode="$1" sanitize="$2" build_dir="$3"
  echo "== check.sh: ${mode} (${build_dir}) =="
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDRUM_CHECKED=ON \
    -DDRUM_SANITIZE="$sanitize"
  cmake --build "$build_dir" -j "$JOBS"
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
  echo "check.sh: all tests passed under ${mode}"
}

case "$MODE" in
  asan) run_mode "address+undefined sanitizers" address build-asan ;;
  tsan) run_mode "thread sanitizer" thread build-tsan ;;
  ubsan) run_mode "undefined-behavior sanitizer (fatal)" ubsan build-ubsan ;;
  all)
    run_mode "address+undefined sanitizers" address build-asan
    run_mode "thread sanitizer" thread build-tsan
    run_mode "undefined-behavior sanitizer (fatal)" ubsan build-ubsan
    ;;
  *)
    echo "usage: scripts/check.sh [asan|tsan|ubsan|all]" >&2
    exit 2
    ;;
esac
echo "check.sh: done (${MODE})"
