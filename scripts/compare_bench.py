#!/usr/bin/env python3
"""compare_bench — perf-regression gate over committed BENCH_*.json baselines.

Usage:
  compare_bench.py BASELINE.json FRESH.json [--tolerance PCT]
                   [--skip-on-host-mismatch] [--require-host]
  compare_bench.py --self-test

Walks both documents and compares every numeric leaf that lives at the same
path. Keys are classified by name:

  lower-is-better   wall/latency/cpu times (*_ms, *_us, *_s, *_ns, latency_*,
                    cpu_*, *slop*), per-op costs (*_per_op, us_per_*);
  higher-is-better  rates and ratios (*per_sec*, *throughput*, speedup*,
                    *ops*, verified_*, delivered);
  identity          workload echo ("config"/"workload" subtrees, seeds,
                    counts) — must match exactly, otherwise the two runs
                    measured different things and the comparison is refused;
  everything else   reported when it moves, never fatal (counters like
                    `chunks` vary with thread count legitimately).

A perf leaf regresses when it moves in the bad direction by more than
--tolerance percent (default 25 — wall-clock noise on shared runners is
real; tighten on quiet hardware). Improvements are reported, never fatal.

Host guard: numbers from different machines are not comparable. Each
document's host fingerprint (scripts/stamp_host.py: cpu_model,
hardware_threads, compiler; also the ad-hoc host{cores,compiler} and
host_hardware_threads forms) is compared first; on mismatch the tool
*refuses* (exit 3) rather than passing or failing on garbage. CI passes
--skip-on-host-mismatch: a runner that does not match the committed
baseline's host skips cleanly (exit 0, loudly) instead of gating on an
apples-to-oranges diff. --require-host refuses unstamped documents.

Exit: 0 ok/skip, 1 regression, 2 usage/parse error, 3 host mismatch.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

LOWER_BETTER_RE = re.compile(
    r"(?:^|_)(?:wall|latency|cpu|slop|dispatch|poll|tick_interval)"
    r"(?:_|$)|_(?:ms|us|ns|s)$|_us_(?:mean|p50|p90|p99)$|_per_op$")
HIGHER_BETTER_RE = re.compile(
    r"per_sec|throughput|speedup|_ops$|^ops_|verified|delivered")
IDENTITY_KEYS = {"config", "workload", "seed", "seeds", "n", "nodes", "runs",
                 "runs_per_point", "points", "threads", "workers", "trials"}
HOST_KEYS = ("cpu_model", "hardware_threads", "cores", "compiler")


def classify(key: str):
    if LOWER_BETTER_RE.search(key):
        return "lower"
    if HIGHER_BETTER_RE.search(key):
        return "higher"
    return "info"


def host_fingerprint(doc) -> dict:
    fp = {}
    host = doc.get("host") if isinstance(doc, dict) else None
    if isinstance(host, dict):
        for k in HOST_KEYS:
            if k in host:
                fp[k] = host[k]
    if isinstance(doc, dict) and "host_hardware_threads" in doc:
        fp.setdefault("hardware_threads", doc["host_hardware_threads"])
    return fp


def walk(base, fresh, path, out):
    """Collects (path, key, base_value, fresh_value) numeric pairs and
    identity mismatches into `out` (dict of lists)."""
    if isinstance(base, dict) and isinstance(fresh, dict):
        for k in base:
            if k == "host" or k not in fresh:
                continue
            here = f"{path}.{k}" if path else k
            if k in IDENTITY_KEYS:
                if base[k] != fresh[k]:
                    out["identity"].append((here, base[k], fresh[k]))
                continue
            walk(base[k], fresh[k], here, out)
    elif isinstance(base, list) and isinstance(fresh, list):
        if len(base) != len(fresh):
            out["identity"].append((f"{path}.length", len(base), len(fresh)))
            return
        for i, (b, f) in enumerate(zip(base, fresh)):
            walk(b, f, f"{path}[{i}]", out)
    elif isinstance(base, bool) or isinstance(fresh, bool):
        if base != fresh:
            out["identity"].append((path, base, fresh))
    elif isinstance(base, (int, float)) and isinstance(fresh, (int, float)):
        key = path.rsplit(".", 1)[-1].split("[")[0]
        out["numeric"].append((path, key, float(base), float(fresh)))


def compare(base_doc, fresh_doc, tolerance_pct: float):
    """Returns (regressions, improvements, notes, identity_mismatches)."""
    out = {"numeric": [], "identity": []}
    walk(base_doc, fresh_doc, "", out)
    regressions, improvements, notes = [], [], []
    tol = tolerance_pct / 100.0
    for path, key, b, f in out["numeric"]:
        direction = classify(key)
        if b == 0.0:
            if f != 0.0 and direction != "info":
                notes.append(f"{path}: baseline 0 -> {f:g} (not gated)")
            continue
        delta = (f - b) / abs(b)
        desc = f"{path}: {b:g} -> {f:g} ({delta:+.1%})"
        if direction == "lower":
            if delta > tol:
                regressions.append(desc)
            elif delta < -tol:
                improvements.append(desc)
        elif direction == "higher":
            if delta < -tol:
                regressions.append(desc)
            elif delta > tol:
                improvements.append(desc)
        elif abs(delta) > tol:
            notes.append(desc + " [unclassified]")
    return regressions, improvements, notes, out["identity"]


def run(base_doc, fresh_doc, tolerance: float, skip_on_host_mismatch: bool,
        require_host: bool, out=print) -> int:
    base_fp = host_fingerprint(base_doc)
    fresh_fp = host_fingerprint(fresh_doc)
    if require_host and (not base_fp or not fresh_fp):
        out("compare_bench: REFUSED — document(s) missing a host stamp "
            "(run scripts/stamp_host.py)")
        return 3
    shared = set(base_fp) & set(fresh_fp)
    mismatched = {k for k in shared if base_fp[k] != fresh_fp[k]}
    if mismatched:
        msg = ", ".join(
            f"{k}: {base_fp[k]!r} vs {fresh_fp[k]!r}" for k in
            sorted(mismatched))
        if skip_on_host_mismatch:
            out(f"compare_bench: SKIPPED — host mismatch ({msg}); numbers "
                "from different machines are not comparable")
            return 0
        out(f"compare_bench: REFUSED — host mismatch ({msg}); re-baseline "
            "on this host or pass --skip-on-host-mismatch")
        return 3

    regressions, improvements, notes, identity = compare(
        base_doc, fresh_doc, tolerance)
    if identity:
        for path, b, f in identity:
            out(f"compare_bench: workload mismatch at {path}: "
                f"{b!r} vs {f!r}")
        out("compare_bench: REFUSED — the two documents measured different "
            "workloads")
        return 3
    for d in notes:
        out(f"  note       {d}")
    for d in improvements:
        out(f"  improved   {d}")
    for d in regressions:
        out(f"  REGRESSED  {d}")
    out(f"compare_bench: {len(regressions)} regression(s), "
        f"{len(improvements)} improvement(s) at ±{tolerance:g}%")
    return 1 if regressions else 0


# ---------------------------------------------------------------------------

def self_test() -> int:
    base = {
        "host": {"cpu_model": "X", "hardware_threads": 4, "compiler": "g12"},
        "workload": {"n": 120, "seed": 1},
        "sweep": [{"threads": 1, "wall_ms": 100.0, "msgs_per_sec": 5000.0,
                   "chunks": 120}],
    }

    def clone(**leaf):
        doc = json.loads(json.dumps(base))
        doc["sweep"][0].update(leaf)
        return doc

    sink = []
    cases = []  # (name, expected_exit, fresh_doc, kwargs)
    cases.append(("identical is clean", 0, clone(), {}))
    cases.append(("slower wall regresses", 1, clone(wall_ms=140.0), {}))
    cases.append(("faster wall improves (exit 0)", 0, clone(wall_ms=60.0),
                  {}))
    cases.append(("lower throughput regresses", 1,
                  clone(msgs_per_sec=3000.0), {}))
    cases.append(("within tolerance passes", 0, clone(wall_ms=110.0), {}))
    cases.append(("unclassified drift never gates", 0, clone(chunks=240),
                  {}))

    other_host = clone()
    other_host["host"]["cpu_model"] = "Y"
    cases.append(("host mismatch refuses", 3, other_host, {}))
    cases.append(("host mismatch skips with flag", 0, other_host,
                  {"skip_on_host_mismatch": True}))

    other_load = clone()
    other_load["workload"]["n"] = 240
    cases.append(("workload mismatch refuses", 3, other_load, {}))

    unstamped = clone()
    del unstamped["host"]
    cases.append(("unstamped passes by default", 0, unstamped, {}))
    cases.append(("unstamped refused with --require-host", 3, unstamped,
                  {"require_host": True}))

    failures = 0
    for name, expected, fresh, kw in cases:
        sink.clear()
        rc = run(base, fresh, tolerance=25.0,
                 skip_on_host_mismatch=kw.get("skip_on_host_mismatch", False),
                 require_host=kw.get("require_host", False),
                 out=sink.append)
        if rc != expected:
            failures += 1
            print(f"SELF-TEST FAIL [{name}]: expected exit {expected}, "
                  f"got {rc}")
            for line in sink:
                print(f"    {line}")
    status = "FAILED" if failures else "passed"
    print(f"compare_bench --self-test: {len(cases) - failures}/{len(cases)} "
          f"cases {status}")
    return 1 if failures else 0


def main() -> int:
    if "--self-test" in sys.argv[1:]:
        return self_test()
    ap = argparse.ArgumentParser(
        description="diff fresh benchmark JSON against a committed baseline")
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=25.0,
                    metavar="PCT", help="regression threshold in percent "
                    "(default: 25)")
    ap.add_argument("--skip-on-host-mismatch", action="store_true",
                    help="exit 0 (loudly) instead of 3 when the hosts differ")
    ap.add_argument("--require-host", action="store_true",
                    help="refuse documents without a host stamp")
    args = ap.parse_args()
    try:
        with open(args.baseline, encoding="utf-8") as f:
            base_doc = json.load(f)
        with open(args.fresh, encoding="utf-8") as f:
            fresh_doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"compare_bench: {e}", file=sys.stderr)
        return 2
    return run(base_doc, fresh_doc, args.tolerance,
               args.skip_on_host_mismatch, args.require_host)


if __name__ == "__main__":
    sys.exit(main())
