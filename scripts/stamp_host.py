#!/usr/bin/env python3
"""Stamp benchmark JSON artifacts with host metadata.

Usage: stamp_host.py [--compiler STRING] FILE.json [FILE.json ...]

Inserts (or replaces) a top-level "host" object in each artifact:
cpu model, hardware thread count, cpufreq governor, compiler, and kernel.
Numbers from different hosts are not comparable; the stamp makes the
provenance of committed results/BENCH_*.json explicit.
"""
import argparse
import json
import os
import platform
import subprocess
import sys


def cpu_model() -> str:
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as f:
            for line in f:
                if line.lower().startswith(("model name", "hardware", "cpu model")):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or "unknown"


def governor() -> str:
    path = "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor"
    try:
        with open(path, encoding="utf-8") as f:
            return f.read().strip()
    except OSError:
        return "unknown"


def compiler_version(override: str) -> str:
    if override:
        return override
    for cc in (os.environ.get("CXX"), "c++"):
        if not cc:
            continue
        try:
            out = subprocess.run([cc, "--version"], capture_output=True,
                                 text=True, timeout=10, check=True)
            return out.stdout.splitlines()[0].strip()
        except (OSError, subprocess.SubprocessError, IndexError):
            continue
    return "unknown"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--compiler", default="",
                    help="compiler identification string (else `c++ --version`)")
    ap.add_argument("files", nargs="+", help="BENCH_*.json artifacts to stamp")
    args = ap.parse_args()

    host = {
        "cpu_model": cpu_model(),
        "hardware_threads": os.cpu_count() or 0,
        "governor": governor(),
        "compiler": compiler_version(args.compiler),
        "kernel": platform.release(),
    }

    status = 0
    for path in args.files:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"stamp_host: skipping {path}: {e}", file=sys.stderr)
            status = 1
            continue
        if not isinstance(doc, dict):
            print(f"stamp_host: skipping {path}: top level is not an object",
                  file=sys.stderr)
            status = 1
            continue
        doc["host"] = host
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"stamp_host: stamped {path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
