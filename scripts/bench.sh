#!/usr/bin/env bash
# Regenerates the committed benchmark results from an optimized build.
#
#   scripts/bench.sh                 # full regeneration (Release, minutes)
#   RUNS=1000 scripts/bench.sh       # the paper's full Monte-Carlo depth
#   SWEEP=1,2,8 scripts/bench.sh     # thread counts for results/BENCH_sim.json
#   SHARDS=1,2,4 scripts/bench.sh    # reactor shard counts for the swarm sweep
#
# Always configures a dedicated Release tree in build-bench/ — bench/ refuses
# to configure in a Debug tree (see bench/CMakeLists.txt), and numbers from
# anything but an optimized build are not comparable to the committed ones.
#
# Outputs (committed):
#   results/microbench.txt        google-benchmark hot-path numbers
#   results/bench_all.txt         every figure binary + asymptotics + ablations
#   results/BENCH_sim.json        parallel sim engine thread sweep (Fig. 3)
#   results/BENCH_adversary.json  adversary zoo: attack x protocol curves
#   results/BENCH_crypto.json     per-backend crypto throughput (microbench)
#   results/BENCH_reactor.json    swarm sweep: 32/128/512-node reactor (shard
#                                 sweep) vs thread-per-node, plus the 10k-node
#                                 flood sweep across shard counts (§13)
#   results/BENCH_ingress.json    128 UDP nodes under a x=2048 flood
#
# Every results/BENCH_*.json is stamped with host metadata (cpu, threads,
# governor, compiler, kernel) by scripts/stamp_host.py.
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS="${RUNS:-}"
NP="$(nproc)"
# Sim thread sweep {1,2,8} + nproc; reactor shard sweep {1,2,4} + nproc.
# Appending nproc (when not already listed) keeps the committed curves
# meaningful on any host without hand-editing.
SWEEP="${SWEEP:-$(python3 -c "
import sys; base=[1,2,8]; np=int(sys.argv[1])
print(','.join(str(t) for t in base + [np] * (np not in base)))" "$NP")}"
SHARDS="${SHARDS:-$(python3 -c "
import sys; base=[1,2,4]; np=int(sys.argv[1])
print(','.join(str(s) for s in base + [np] * (np not in base)))" "$NP")}"
BUILD=build-bench

EXTRA=()
if [[ -n "$RUNS" ]]; then EXTRA+=(--runs "$RUNS"); fi

cmake -B "$BUILD" -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD"

mkdir -p results

{
  for b in "$BUILD"/bench/fig* "$BUILD"/bench/asymptotics \
           "$BUILD"/bench/ablations; do
    echo "### $(basename "$b")"
    case "$b" in
      # asymptotics takes no --runs flag
      *asymptotics*) "$b" ;;
      *) "$b" "${EXTRA[@]}" ;;
    esac
    echo
  done
} 2>&1 | tee results/bench_all.txt

"$BUILD"/bench/microbench --benchmark_min_time=0.2 \
  2>&1 | tee results/microbench.txt

"$BUILD"/bench/bench_sim --sweep "$SWEEP" --json results/BENCH_sim.json \
  "${EXTRA[@]}"

# microbench writes its crypto artifact into the CWD; it belongs with the
# other committed artifacts.
if [[ -f BENCH_crypto.json ]]; then mv BENCH_crypto.json results/; fi

# ---- reactor swarm sweep (results/BENCH_reactor.json) ----------------------
# Reactor (across shard counts) vs thread-per-node at 32/128/512 nodes, then
# the 10k-node flood sweep — reactor only (10k baseline threads would be 10k
# OS threads), lazy pair keys (prewarm is O(n^2) X25519 at this scale), a
# slower round and a longer window so dissemination shows up at all when the
# group is 20x larger than the core count can comfortably serve.
cmake --build "$BUILD" --target swarm
for n in 32 128 512; do
  ./"$BUILD"/examples/swarm --nodes "$n" --seconds 15 --mode both \
    --round 400 --rate 4 --alpha 0.25 --x 16 --workers 2 \
    --shards "$SHARDS" --json "results/.reactor_$n.json"
done
./"$BUILD"/examples/swarm --nodes 10000 --seconds 10 --mode reactor \
  --round 500 --rate 4 --alpha 0.25 --x 16 --no-prewarm \
  --shards "$SHARDS" --json results/.reactor_10000.json
python3 - <<'EOF'
import datetime
import json
import pathlib

results = pathlib.Path("results")
runs = []
for n in (32, 128, 512, 10000):
    part = results / f".reactor_{n}.json"
    run = json.loads(part.read_text())
    # Strip the loop-telemetry subtree from committed baselines: its sparse
    # histogram bucket arrays change shape run to run, which
    # compare_bench.py (correctly) refuses as a workload mismatch.
    for phase in run.get("phases", []):
        phase.pop("loop", None)
    runs.append(run)
    part.unlink()
doc = {
    "bench": "reactor_swarm_sweep",
    "generated": datetime.date.today().isoformat(),
    "note": "examples/swarm --round 400 --rate 4 --x 16 --workers 2 "
            "--seconds 15 (mode both, reactor phases swept over --shards) at "
            "32/128/512 nodes; 10k-node flood sweep is reactor-only with "
            "--no-prewarm --round 500 --seconds 10. One process, in-process "
            "mem network, flooding adversary at alpha=0.25 x=16 throughout; "
            "sharded runs (reactor-s<K>) use one event loop per shard with "
            "SPSC cross-shard handoff (DESIGN.md §13). On a single-core "
            "host the 10k group saturates the CPU: ingress throughput under "
            "flood is the figure of merit there, delivery counts are "
            "latency-bound.",
    "runs": runs,
}
(results / "BENCH_reactor.json").write_text(json.dumps(doc, indent=2) + "\n")
print("merged results/BENCH_reactor.json")
EOF

# 128 UDP nodes under a x=2048 flood — the DESIGN.md §12 ingress pipeline
# benchmark, same command CI runs.
./"$BUILD"/examples/swarm --nodes 128 --seconds 15 --mode reactor \
  --workers 2 --round 400 --rate 4 --x 2048 --udp \
  --json results/BENCH_ingress.json
# Same loop-subtree strip as the reactor sweep (see above): sparse histogram
# shapes are not stable across runs and would trip the comparator's identity
# check in CI.
python3 - <<'EOF'
import json
import pathlib

path = pathlib.Path("results/BENCH_ingress.json")
doc = json.loads(path.read_text())
for phase in doc.get("phases", []):
    phase.pop("loop", None)
path.write_text(json.dumps(doc, indent=2) + "\n")
print("stripped loop telemetry from results/BENCH_ingress.json")
EOF

# Stamp every JSON artifact with host metadata (cpu model, thread count,
# governor, compiler, kernel) — numbers are only comparable with known
# provenance. The compiler string comes from the bench tree's cache so it
# matches what actually built the binaries.
COMPILER=$(grep -m1 '^CMAKE_CXX_COMPILER:' "$BUILD"/CMakeCache.txt \
             | cut -d= -f2- || true)
if [[ -n "$COMPILER" && -x "$COMPILER" ]]; then
  COMPILER="$("$COMPILER" --version | head -n1)"
fi
python3 scripts/stamp_host.py --compiler "$COMPILER" results/BENCH_*.json

echo
echo "bench.sh: wrote results/bench_all.txt, results/microbench.txt," \
     "results/BENCH_sim.json, results/BENCH_adversary.json (fig15)," \
     "results/BENCH_crypto.json, results/BENCH_reactor.json," \
     "results/BENCH_ingress.json"
