#!/usr/bin/env bash
# Regenerates the committed benchmark results from an optimized build.
#
#   scripts/bench.sh                 # full regeneration (Release, minutes)
#   RUNS=1000 scripts/bench.sh       # the paper's full Monte-Carlo depth
#   SWEEP=1,2,4,8 scripts/bench.sh   # thread counts for results/BENCH_sim.json
#
# Always configures a dedicated Release tree in build-bench/ — bench/ refuses
# to configure in a Debug tree (see bench/CMakeLists.txt), and numbers from
# anything but an optimized build are not comparable to the committed ones.
#
# Outputs (committed):
#   results/microbench.txt        google-benchmark hot-path numbers
#   results/bench_all.txt         every figure binary + asymptotics + ablations
#   results/BENCH_sim.json        parallel sim engine thread sweep (Fig. 3)
#   results/BENCH_adversary.json  adversary zoo: attack x protocol curves
#
# Every results/BENCH_*.json is stamped with host metadata (cpu, threads,
# governor, compiler, kernel) by scripts/stamp_host.py.
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS="${RUNS:-}"
SWEEP="${SWEEP:-1,2,4,8}"
BUILD=build-bench

EXTRA=()
if [[ -n "$RUNS" ]]; then EXTRA+=(--runs "$RUNS"); fi

cmake -B "$BUILD" -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD"

mkdir -p results

{
  for b in "$BUILD"/bench/fig* "$BUILD"/bench/asymptotics \
           "$BUILD"/bench/ablations; do
    echo "### $(basename "$b")"
    case "$b" in
      # asymptotics takes no --runs flag
      *asymptotics*) "$b" ;;
      *) "$b" "${EXTRA[@]}" ;;
    esac
    echo
  done
} 2>&1 | tee results/bench_all.txt

"$BUILD"/bench/microbench --benchmark_min_time=0.2 \
  2>&1 | tee results/microbench.txt

"$BUILD"/bench/bench_sim --sweep "$SWEEP" --json results/BENCH_sim.json \
  "${EXTRA[@]}"

# Stamp every JSON artifact with host metadata (cpu model, thread count,
# governor, compiler, kernel) — numbers are only comparable with known
# provenance. The compiler string comes from the bench tree's cache so it
# matches what actually built the binaries.
COMPILER=$(grep -m1 '^CMAKE_CXX_COMPILER:' "$BUILD"/CMakeCache.txt \
             | cut -d= -f2- || true)
if [[ -n "$COMPILER" && -x "$COMPILER" ]]; then
  COMPILER="$("$COMPILER" --version | head -n1)"
fi
python3 scripts/stamp_host.py --compiler "$COMPILER" results/BENCH_*.json

echo
echo "bench.sh: wrote results/bench_all.txt, results/microbench.txt," \
     "results/BENCH_sim.json, results/BENCH_adversary.json (fig15)"
