// Dynamic membership demo (paper §10): a CA admits members with expiring
// certificates; join/leave/expel events travel through Drum's own multicast;
// every process's validated membership table converges; a forged event is
// rejected everywhere.
//
//   ./build/examples/membership_demo
#include <cstdio>
#include <memory>
#include <vector>

#include "drum/membership/ca.hpp"
#include "drum/membership/service.hpp"
#include "drum/net/mem_transport.hpp"

namespace {

using namespace drum;

struct Member {
  std::unique_ptr<net::Transport> transport;
  std::unique_ptr<core::Node> node;
  std::unique_ptr<membership::MembershipService> service;
};

void print_views(const std::vector<std::unique_ptr<Member>>& members,
                 const membership::CertificationAuthority& ca) {
  std::printf("  membership views: ");
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (!members[i]) continue;
    std::printf("[node %zu: %zu members] ", i,
                members[i]->service->table().size());
    (void)ca;
  }
  std::printf("\n");
}

}  // namespace

int main() {
  util::Rng rng(99);
  net::MemNetwork network;
  membership::CertificationAuthority ca(rng, /*default_ttl=*/1000);
  std::vector<crypto::Identity> identities;
  std::vector<std::unique_ptr<Member>> members;

  auto add_member = [&](std::uint32_t id) {
    while (identities.size() <= id) {
      identities.push_back(crypto::Identity::generate(rng));
    }
    auto wk_pull = static_cast<std::uint16_t>(7000 + 2 * id);
    auto wk_offer = static_cast<std::uint16_t>(7001 + 2 * id);
    auto event = ca.authorize_join(id, id, wk_pull, wk_offer,
                                   identities[id].sign_public(),
                                   identities[id].dh_public());
    if (!event) {
      std::printf("CA refused join of %u (already a member)\n", id);
      return;
    }
    auto m = std::make_unique<Member>();
    m->transport = network.transport(id);
    core::NodeConfig cfg = core::make_node_config(core::Variant::kDrum, id);
    cfg.wk_pull_port = wk_pull;
    cfg.wk_offer_port = wk_offer;
    std::vector<core::Peer> self_dir(id + 1);
    for (std::uint32_t i = 0; i <= id; ++i) {
      self_dir[i].id = i;
      self_dir[i].present = (i == id);
    }
    self_dir[id] = event->certificate->to_peer();
    Member* raw = m.get();
    m->node = std::make_unique<core::Node>(
        cfg, identities[id], self_dir, *m->transport, rng.next(),
        [raw, id](const core::Node::Delivery& d) {
          if (!raw->service->handle_delivery(d)) {
            std::printf("  [node %u] app data: %.*s\n", id,
                        static_cast<int>(d.msg.payload.size()),
                        reinterpret_cast<const char*>(d.msg.payload.data()));
          }
        });
    m->service = std::make_unique<membership::MembershipService>(
        ca.public_key(), *m->node, ca.now());
    m->service->bootstrap(ca.roster());
    while (members.size() <= id) members.push_back(nullptr);
    members[id] = std::move(m);
    // An existing member announces the newcomer to the group via Drum.
    for (auto& existing : members) {
      if (existing && existing->node->config().id != id) {
        existing->service->publish(*event);
        break;
      }
    }
    std::printf("node %u joined (certificate serial %llu, expires %lld)\n",
                id, static_cast<unsigned long long>(event->certificate->serial),
                static_cast<long long>(event->certificate->expires_at));
  };

  auto run_rounds = [&](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      for (auto& m : members) {
        if (m) m->node->on_round();
      }
      for (auto& m : members) {
        if (m) m->service->on_round(ca.now());
      }
      for (int sweep = 0; sweep < 4; ++sweep) {
        // The push-style ingress API: drain every member into one batch so
        // the whole sweep's signatures verify in a single crypto pass.
        drum::core::ingress::IngressBatch batch;
        for (auto& m : members) {
          if (m) m->node->drain_ingress(batch);
        }
        batch.dispatch();
      }
    }
  };

  std::printf("== bootstrapping a 4-member group ==\n");
  for (std::uint32_t id = 0; id < 4; ++id) add_member(id);
  // Everyone re-syncs with the CA roster (initial membership list).
  for (auto& m : members) {
    if (m) m->service->bootstrap(ca.roster());
  }
  run_rounds(4);
  print_views(members, ca);

  std::printf("\n== node 4 joins; the event gossips through Drum ==\n");
  add_member(4);
  run_rounds(6);
  print_views(members, ca);

  std::printf("\n== node 2 logs out (signed leave request) ==\n");
  auto leave_sig = identities[2].sign(util::ByteSpan(
      membership::CertificationAuthority::leave_request_bytes(2)));
  auto leave_ev = ca.process_leave(2, leave_sig);
  members[2].reset();  // the process actually goes away
  members[0]->service->publish(*leave_ev);
  run_rounds(6);
  print_views(members, ca);

  std::printf("\n== the CA expels node 3 on suspicion of malbehaviour ==\n");
  auto expel_ev = ca.expel(3);
  members[3].reset();
  members[0]->service->publish(*expel_ev);
  run_rounds(6);
  print_views(members, ca);

  std::printf("\n== a forged expel (tampered target) is rejected ==\n");
  auto forged = *expel_ev;
  forged.member_id = 1;  // attacker retargets the signed event
  members[0]->service->publish(forged);
  run_rounds(4);
  std::printf("  node 4 still sees node 1 as a member: %s; rejected events "
              "at node 4: %zu\n",
              members[4]->service->table().is_member(1, ca.now()) ? "yes"
                                                                  : "NO",
              members[4]->service->events_rejected());

  std::printf("\n== application data still flows in the final group ==\n");
  const char* text = "post-churn multicast";
  members[1]->node->multicast(util::ByteSpan(
      reinterpret_cast<const std::uint8_t*>(text), std::strlen(text)));
  run_rounds(5);

  bool ok = members[4]->service->table().is_member(1, ca.now()) &&
            !members[4]->service->table().is_member(2, ca.now()) &&
            !members[4]->service->table().is_member(3, ca.now());
  std::printf("\nfinal state %s\n", ok ? "consistent" : "INCONSISTENT");
  return ok ? 0 : 1;
}
