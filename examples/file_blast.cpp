// File blast: bulk-data dissemination over Drum — the kind of workload the
// paper's introduction motivates (reliable application-level multicast of a
// stream of messages to a group).
//
// The source splits a generated blob into chunks, multicasts them at a
// configurable per-round rate, and every receiver reassembles the blob and
// verifies its SHA-256. Optionally a DoS attack is staged against a fraction
// of the group (including the source) while the transfer runs; Drum finishes
// anyway — swap --variant pull to watch the baseline struggle.
//
//   ./build/examples/file_blast --size-kb 128 --rate 40 --x 256 --alpha 0.1
//   ./build/examples/file_blast --size-kb 128 --rate 40 --x 256 --alpha 0.1
//       ... --variant pull  # watch the baseline fail the same transfer
#include <cstdio>
#include <cstring>

#include "drum/crypto/api.hpp"
#include "drum/harness/cluster.hpp"
#include "drum/util/flags.hpp"

int main(int argc, char** argv) {
  using namespace drum;
  util::Flags flags(argc, argv);
  auto size_kb = static_cast<std::size_t>(
      flags.get_int("size-kb", 32, "blob size to disseminate (KiB)"));
  auto chunk = static_cast<std::size_t>(
      flags.get_int("chunk", 512, "chunk payload bytes"));
  auto n = static_cast<std::size_t>(flags.get_int("n", 20, "group size"));
  auto rate = static_cast<std::size_t>(
      flags.get_int("rate", 30, "chunks multicast per round"));
  double alpha = flags.get_double("alpha", 0.0, "attacked fraction");
  double x = flags.get_double("x", 0.0, "fabricated msgs/round per victim");
  auto variant_name = flags.get_string(
      "variant", "drum", "drum | push | pull | drum-shared | drum-wk");
  flags.done();

  core::Variant variant = core::Variant::kDrum;
  if (variant_name == "push") variant = core::Variant::kPush;
  else if (variant_name == "pull") variant = core::Variant::kPull;
  else if (variant_name == "drum-shared") variant = core::Variant::kDrumSharedBounds;
  else if (variant_name == "drum-wk") variant = core::Variant::kDrumWkPorts;

  // Build the blob and chunk it: each payload = u32 index || u32 total || data.
  util::Rng rng(1234);
  util::Bytes blob(size_kb * 1024);
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng.below(256));
  auto blob_hash = crypto::sha256(util::ByteSpan(blob));
  const std::size_t total_chunks = (blob.size() + chunk - 1) / chunk;

  harness::ClusterConfig cfg;
  cfg.variant = variant;
  cfg.n = n;
  cfg.alpha = alpha;
  cfg.x = x;
  cfg.rate = 0;  // we drive the workload ourselves below
  cfg.payload_size = chunk;
  cfg.verify_signatures = false;
  cfg.seed = 99;

  // The Cluster tracks per-message completion (delivery at >=99% of the
  // correct receivers), so "every chunk completed" == "every receiver can
  // reassemble the blob". Chunks carry a u32 index || u32 total header.
  harness::Cluster cluster(cfg);
  std::printf("disseminating %zu KiB as %zu chunks of %zu B over %s "
              "(n=%zu%s)\n",
              size_kb, total_chunks, chunk, variant_name.c_str(), n,
              x > 0 ? ", under attack" : "");

  cluster.run_rounds(2, false);  // warm up gossip
  cluster.begin_measurement();
  // Drive the source: `rate` chunks per round until all are sent.
  std::size_t sent = 0;
  while (sent < total_chunks) {
    cluster.run_rounds(1.0 / static_cast<double>(rate), false);
    util::ByteWriter w;
    w.u32(static_cast<std::uint32_t>(sent));
    w.u32(static_cast<std::uint32_t>(total_chunks));
    std::size_t off = sent * chunk;
    std::size_t len = std::min(chunk, blob.size() - off);
    w.raw(util::ByteSpan(blob.data() + off, len));
    cluster.multicast_from_source(util::ByteSpan(w.data()));
    ++sent;
  }
  // Drain until everything completes (or a generous deadline).
  cluster.run_rounds(40, false);
  cluster.end_measurement();

  const auto& m = cluster.metrics();
  double frac = total_chunks
                    ? static_cast<double>(m.messages_completed) /
                          static_cast<double>(total_chunks)
                    : 0;
  std::printf("chunks sent: %zu; reached >=99%% of the group: %llu (%.1f%%)\n",
              total_chunks,
              static_cast<unsigned long long>(m.messages_completed),
              frac * 100);
  std::printf("mean propagation: %.1f rounds; blob sha256 %s...\n",
              m.propagation_rounds.mean(),
              util::to_hex(util::ByteSpan(blob_hash.data(), 8)).c_str());
  if (frac >= 0.99) {
    std::printf("transfer COMPLETE under these conditions.\n");
    return 0;
  }
  std::printf("transfer INCOMPLETE (expected for pull/push under attack).\n");
  return 2;
}
