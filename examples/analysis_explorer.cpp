// Analysis explorer: interactive access to the paper's math — compute, for
// your own parameters, the acceptance probabilities (Appendix A), the Pull
// source-escape distribution (Appendix B), Drum's effective fans (§6), and
// the full expected-coverage curve (Appendix C), as plot-ready CSV.
//
//   ./build/examples/analysis_explorer --n 500 --fanout 4 --alpha 0.2 --x 64
#include <cstdio>

#include "drum/analysis/appendix_a.hpp"
#include "drum/analysis/appendix_b.hpp"
#include "drum/analysis/appendix_c.hpp"
#include "drum/analysis/asymptotics.hpp"
#include "drum/util/flags.hpp"
#include "drum/util/table.hpp"

int main(int argc, char** argv) {
  using namespace drum;
  util::Flags flags(argc, argv);
  auto n = static_cast<std::size_t>(flags.get_int("n", 120, "group size"));
  auto f = static_cast<std::size_t>(flags.get_int("fanout", 4, "fan-out F"));
  double alpha = flags.get_double("alpha", 0.1, "attacked fraction of n");
  double x = flags.get_double("x", 128, "fabricated msgs/round per victim");
  auto b = static_cast<std::size_t>(flags.get_int(
      "faulty", static_cast<std::int64_t>(n / 10), "faulty members"));
  auto rounds = static_cast<std::size_t>(
      flags.get_int("rounds", 25, "coverage-curve horizon"));
  flags.done();

  std::printf("Drum analysis for n=%zu, F=%zu, alpha=%.2f, x=%.0f, b=%zu\n\n",
              n, f, alpha, x, b);

  std::printf("Appendix A: p_u = %.4f (non-attacked acceptance)\n",
              analysis::p_u(n, f));
  std::printf("            p_a = %.5f (attacked; coarse bound F/x = %.5f)\n",
              analysis::p_a(n, f, x), static_cast<double>(f) / x);

  auto fans = analysis::drum_effective_fans(n, f, alpha, x);
  std::printf("§6 (Drum):  effective fan attacked = %.3f, non-attacked = "
              "%.3f (bounded below in x — Lemma 1)\n",
              fans.attacked, fans.non_attacked);

  std::printf("§6 (Push):  propagation lower bound = %.1f rounds (Lemma 4)\n",
              analysis::push_propagation_lower_bound(n, f, alpha, x));
  std::printf("§6 (Pull):  E[rounds to leave attacked source] = %.1f, "
              "STD = %.1f (Lemma 6 / Appendix B)\n\n",
              analysis::pull_expected_rounds_to_leave_source(n, f, x),
              analysis::pull_std_rounds_to_leave_source(n, f, x));

  util::Table t({"round", "drum %", "push %", "pull %"});
  std::vector<std::vector<double>> curves;
  for (auto proto : {analysis::Protocol::kDrum, analysis::Protocol::kPush,
                     analysis::Protocol::kPull}) {
    analysis::DetailedParams p;
    p.protocol = proto;
    p.n = n;
    p.b = b;
    p.alpha = alpha;
    p.x = x;
    curves.push_back(analysis::expected_coverage(p, rounds));
  }
  for (std::size_t r = 0; r <= rounds; ++r) {
    t.add_row({static_cast<double>(r), curves[0][r] * 100, curves[1][r] * 100,
               curves[2][r] * 100},
              1);
  }
  t.print("Appendix C: expected coverage per round under this attack");
  return 0;
}
