// Attack demo: stages the paper's targeted DoS attack against a live
// 50-process group and shows, side by side, what happens to Drum and to the
// push-only / pull-only baselines — the paper's story in one run.
//
//   ./build/examples/attack_demo                # defaults: alpha=10%, x=128
//   ./build/examples/attack_demo --x 256 --alpha 0.2 --rate 30
#include <cstdio>

#include "drum/harness/cluster.hpp"
#include "drum/util/flags.hpp"
#include "drum/util/table.hpp"

namespace {

struct Outcome {
  double throughput;  // msgs/round received on average
  double rounds;      // propagation rounds per message (99% coverage)
  double attacked_lat_ms, non_attacked_lat_ms;
  std::uint64_t completed;
};

Outcome run(drum::core::Variant variant, double alpha, double x,
            std::size_t rate) {
  using namespace drum;
  harness::ClusterConfig cfg;
  cfg.variant = variant;
  cfg.n = 50;
  cfg.alpha = alpha;
  cfg.x = x;
  cfg.rate = rate;
  cfg.verify_signatures = false;
  cfg.seed = 7;
  harness::Cluster cluster(cfg);
  cluster.run_rounds(5, true);
  cluster.begin_measurement();
  cluster.run_rounds(30, true);
  cluster.end_measurement();
  cluster.run_rounds(30, false);

  Outcome out{};
  const auto& m = cluster.metrics();
  out.throughput = m.mean_throughput_msgs_per_sec() *
                   static_cast<double>(cfg.round_us) / 1e6;
  out.rounds = m.propagation_rounds.mean();
  util::RunningStats att, non;
  for (const auto& pn : m.nodes) {
    (pn.attacked ? att : non).merge(pn.latency_us);
  }
  out.attacked_lat_ms = att.mean() / 1000.0;
  out.non_attacked_lat_ms = non.mean() / 1000.0;
  out.completed = m.messages_completed;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace drum;
  util::Flags flags(argc, argv);
  double alpha = flags.get_double("alpha", 0.1, "attacked fraction");
  double x = flags.get_double("x", 128, "fabricated msgs/round per victim");
  auto rate = static_cast<std::size_t>(
      flags.get_int("rate", 30, "source msgs per round"));
  flags.done();

  std::printf("Staging a DoS attack on a 50-process group:\n"
              "  %.0f%% of the group flooded with %.0f fabricated messages "
              "per round each\n"
              "  (source attacked; 10%% of members malicious; source rate "
              "%zu msgs/round)\n\n",
              alpha * 100, x, rate);

  util::Table t({"protocol", "throughput (msg/round)", "prop. time (rounds)",
                 "latency attacked (ms)", "latency others (ms)"});
  struct P {
    const char* name;
    core::Variant v;
  } protos[] = {{"drum", core::Variant::kDrum},
                {"push-only", core::Variant::kPush},
                {"pull-only", core::Variant::kPull}};
  for (const auto& p : protos) {
    auto base = run(p.v, 0, 0, rate);
    auto attacked = run(p.v, alpha, x, rate);
    auto rounds_cell = [](const Outcome& o) {
      // 0 completed messages means no message ever reached 99% of the
      // group inside the run — report that rather than a misleading 0.
      return o.completed ? util::fmt(o.rounds, 1) : std::string("never");
    };
    t.add_row({std::string(p.name) + " (no attack)",
               util::fmt(base.throughput, 1), rounds_cell(base), "-",
               util::fmt(base.non_attacked_lat_ms, 0)});
    t.add_row({std::string(p.name) + " (attacked)",
               util::fmt(attacked.throughput, 1), rounds_cell(attacked),
               util::fmt(attacked.attacked_lat_ms, 0),
               util::fmt(attacked.non_attacked_lat_ms, 0)});
  }
  t.print("Drum vs baselines under targeted DoS");

  std::printf(
      "Reading the table: Drum's throughput and latency barely move under\n"
      "attack; pull-only collapses (the flooded source cannot serve pull\n"
      "requests); push-only's attacked processes lag far behind the rest.\n");
  return 0;
}
