// swarm — the reactor-runtime scale benchmark (DESIGN.md §8, README
// "Running a swarm").
//
// Hosts N protocol nodes plus a flooding adversary in ONE process, under
// either the event-driven ReactorRuntime (default) or the thread-per-node
// baseline, and reports threads / CPU / wall-clock delivery latency. The
// comparison across 32/128/512 nodes is the reactor's headline number: same
// protocol, ~10x fewer threads, less CPU burned per delivered message.
//
//   swarm [options]
//     --nodes N        group size                      (default 128)
//     --seconds S      measurement window              (default 10)
//     --mode M         reactor | threads | both        (default both)
//     --workers W      reactor worker threads          (default 2)
//     --shards LIST    comma-separated reactor shard counts; one reactor
//                      phase per entry (1 = single loop + workers, 0 = one
//                      shard per core; DESIGN.md §13)     (default "1")
//     --round MS       mean round duration, ms         (default 200)
//     --rate R         source multicasts per round     (default 10)
//     --alpha A        attacked fraction               (default 0.25)
//     --x X            fabricated msgs/victim/round    (default 64)
//     --udp            loopback UDP instead of mem net
//     --no-verify      skip Ed25519 data-signature checks (CPU calibration)
//     --no-prewarm     lazy pairwise-key derivation (mandatory at 10k nodes:
//                      prewarming is O(n^2) X25519 exchanges)
//     --json PATH      write BENCH_reactor.json-style report
//     --seed S         RNG seed                        (default 1)
//
// Each mode (and each shard count) runs in its own sequential phase so
// getrusage CPU deltas are attributable; the JSON document carries one entry
// per phase. Reactor phases at shards=1 keep the plain "reactor" label so
// existing compare_bench baselines stay addressable; sharded phases are
// "reactor-s<K>".
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "drum/harness/swarm.hpp"

namespace {

struct Options {
  std::size_t nodes = 128;
  int seconds = 10;
  std::string mode = "both";
  std::size_t workers = 2;
  std::vector<std::size_t> shards = {1};
  int round_ms = 200;
  std::size_t rate = 10;
  double alpha = 0.25;
  double x = 64.0;
  bool udp = false;
  bool verify = true;
  bool prewarm = true;
  std::string json_path;
  std::uint64_t seed = 1;
};

std::vector<std::size_t> parse_size_list(const char* s) {
  std::vector<std::size_t> out;
  std::string cur;
  for (const char* p = s;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!cur.empty()) out.push_back(std::strtoull(cur.c_str(), nullptr, 10));
      cur.clear();
      if (*p == '\0') break;
    } else {
      cur.push_back(*p);
    }
  }
  return out;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string report_json(const std::string& mode,
                        const drum::harness::SwarmReport& r) {
  std::string out = "    {\n";
  out += "      \"mode\": \"" + mode + "\",\n";
  out += "      \"nodes\": " + std::to_string(r.nodes) + ",\n";
  out += "      \"threads\": " + std::to_string(r.threads) + ",\n";
  out += "      \"shards\": " + std::to_string(r.shards) + ",\n";
  out += "      \"wall_s\": " + fmt(r.wall_s) + ",\n";
  out += "      \"cpu_user_s\": " + fmt(r.cpu_user_s) + ",\n";
  out += "      \"cpu_sys_s\": " + fmt(r.cpu_sys_s) + ",\n";
  out += "      \"cpu_util\": " + fmt(r.cpu_util()) + ",\n";
  out += "      \"rounds\": " + std::to_string(r.rounds) + ",\n";
  out += "      \"polls\": " + std::to_string(r.polls) + ",\n";
  out += "      \"delivered\": " + std::to_string(r.delivered) + ",\n";
  out += "      \"attack_datagrams\": " + std::to_string(r.attack_datagrams) +
         ",\n";
  out += "      \"ingress_datagrams\": " + std::to_string(r.ingress_datagrams) +
         ",\n";
  out += "      \"ingress_datagrams_per_sec\": " +
         fmt(r.ingress_datagrams_per_sec()) + ",\n";
  out += "      \"cpu_ms_per_delivered\": " + fmt(r.cpu_ms_per_delivered()) +
         ",\n";
  out += "      \"latency_samples\": " + std::to_string(r.latency_samples) +
         ",\n";
  out += "      \"latency_ms\": {\"mean\": " + fmt(r.latency_ms_mean) +
         ", \"p50\": " + fmt(r.latency_ms_p50) +
         ", \"p90\": " + fmt(r.latency_ms_p90) +
         ", \"p99\": " + fmt(r.latency_ms_p99) + "},\n";
  out += "      \"loop\": " + r.loop_metrics_json + "\n";
  out += "    }";
  return out;
}

drum::harness::SwarmReport run_phase(const Options& opt, bool reactor,
                                     std::size_t shards,
                                     const std::string& label) {
  drum::harness::SwarmConfig cfg;
  cfg.n = opt.nodes;
  cfg.alpha = opt.alpha;
  cfg.x = opt.x;
  cfg.seed = opt.seed;
  cfg.round = std::chrono::milliseconds(opt.round_ms);
  cfg.rate = opt.rate;
  cfg.use_udp = opt.udp;
  cfg.verify_signatures = opt.verify;
  cfg.reactor = reactor;
  cfg.workers = opt.workers;
  cfg.shards = shards;
  cfg.prewarm = opt.prewarm;

  drum::harness::Swarm swarm(cfg);
  swarm.start();
  swarm.run_for(std::chrono::seconds(opt.seconds));
  swarm.stop();
  auto r = swarm.report();

  std::printf(
      "%-12s nodes=%-5zu threads=%-4zu wall=%.1fs cpu=%.2fs (%.0f%%) "
      "rounds=%llu delivered=%llu flood=%llu ingress=%.0f/s "
      "cpu/msg=%.3fms lat p50/p90/p99 = %.1f/%.1f/%.1f ms\n",
      label.c_str(), r.nodes, r.threads, r.wall_s,
      r.cpu_total_s(), 100.0 * r.cpu_util(),
      static_cast<unsigned long long>(r.rounds),
      static_cast<unsigned long long>(r.delivered),
      static_cast<unsigned long long>(r.attack_datagrams),
      r.ingress_datagrams_per_sec(), r.cpu_ms_per_delivered(),
      r.latency_ms_p50, r.latency_ms_p90, r.latency_ms_p99);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--nodes") {
      opt.nodes = static_cast<std::size_t>(std::atoll(next()));
    } else if (a == "--seconds") {
      opt.seconds = std::atoi(next());
    } else if (a == "--mode") {
      opt.mode = next();
    } else if (a == "--workers") {
      opt.workers = static_cast<std::size_t>(std::atoll(next()));
    } else if (a == "--shards") {
      opt.shards = parse_size_list(next());
      if (opt.shards.empty()) {
        std::fprintf(stderr, "--shards needs at least one count\n");
        return 2;
      }
    } else if (a == "--round") {
      opt.round_ms = std::atoi(next());
    } else if (a == "--rate") {
      opt.rate = static_cast<std::size_t>(std::atoll(next()));
    } else if (a == "--alpha") {
      opt.alpha = std::atof(next());
    } else if (a == "--x") {
      opt.x = std::atof(next());
    } else if (a == "--udp") {
      opt.udp = true;
    } else if (a == "--no-verify") {
      opt.verify = false;
    } else if (a == "--no-prewarm") {
      opt.prewarm = false;
    } else if (a == "--json") {
      opt.json_path = next();
    } else if (a == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return 2;
    }
  }
  if (opt.mode != "reactor" && opt.mode != "threads" && opt.mode != "both") {
    std::fprintf(stderr, "--mode must be reactor, threads, or both\n");
    return 2;
  }

  std::printf(
      "swarm: %zu nodes, %ds window, round %dms, alpha=%.2f x=%.0f, %s\n",
      opt.nodes, opt.seconds, opt.round_ms, opt.alpha, opt.x,
      opt.udp ? "udp" : "mem");

  std::vector<std::string> entries;
  if (opt.mode == "reactor" || opt.mode == "both") {
    for (std::size_t sh : opt.shards) {
      const std::string label =
          sh == 1 ? "reactor" : "reactor-s" + std::to_string(sh);
      entries.push_back(report_json(label, run_phase(opt, true, sh, label)));
    }
  }
  if (opt.mode == "threads" || opt.mode == "both") {
    entries.push_back(
        report_json("threads", run_phase(opt, false, 1, "threads")));
  }

  if (!opt.json_path.empty()) {
    std::string out = "{\n  \"bench\": \"reactor_swarm\",\n";
    out += "  \"config\": {\"nodes\": " + std::to_string(opt.nodes);
    out += ", \"seconds\": " + std::to_string(opt.seconds);
    out += ", \"round_ms\": " + std::to_string(opt.round_ms);
    out += ", \"rate\": " + std::to_string(opt.rate);
    out += ", \"alpha\": " + fmt(opt.alpha);
    out += ", \"x\": " + fmt(opt.x);
    out += ", \"workers\": " + std::to_string(opt.workers);
    out += ", \"shards\": [";
    for (std::size_t i = 0; i < opt.shards.size(); ++i) {
      out += (i ? ", " : "") + std::to_string(opt.shards[i]);
    }
    out += "], \"prewarm\": " + std::string(opt.prewarm ? "true" : "false");
    out += ", \"transport\": \"" + std::string(opt.udp ? "udp" : "mem");
    out += "\", \"seed\": " + std::to_string(opt.seed) + "},\n";
    out += "  \"phases\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
      out += entries[i];
      out += i + 1 < entries.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    std::ofstream f(opt.json_path);
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
      return 1;
    }
    f << out;
    std::printf("wrote %s\n", opt.json_path.c_str());
  }
  return 0;
}
