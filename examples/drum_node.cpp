// drum_node — a standalone Drum process for real multi-process deployments.
//
// One OS process per group member over real UDP, as the paper deployed on
// Emulab. Two modes:
//
//  1. Generate a group (writes group.txt + per-node secret key files):
//       ./build/examples/drum_node --generate 5 --out /tmp/grp --base-port 28000
//
//  2. Run a member (in 5 separate terminals / machines):
//       ./build/examples/drum_node --id 0 --group /tmp/grp/group.txt
//           --key /tmp/grp/node0.key [--say "hello"] [--run-secs 30]
//
// Each delivered message is printed; periodic stats go to stderr. --say
// multicasts a message after startup; --rate N multicasts N random
// messages per round (workload mode).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "drum/core/groupfile.hpp"
#include "drum/core/node.hpp"
#include "drum/crypto/keys.hpp"
#include "drum/net/udp_transport.hpp"
#include "drum/runtime/runner.hpp"
#include "drum/util/flags.hpp"

namespace {

using namespace drum;

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f << content;
  return f.good();
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

int generate_group(std::size_t n, const std::string& out_dir,
                   std::uint16_t base_port, const std::string& host) {
  util::Rng rng(static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count()));
  std::vector<core::Peer> dir(n);
  const std::uint32_t host_ip = net::parse_ipv4(host.c_str());
  if (host_ip == 0) {
    std::fprintf(stderr, "bad --host %s\n", host.c_str());
    return 1;
  }
  for (std::uint32_t id = 0; id < n; ++id) {
    auto identity = crypto::Identity::generate(rng);
    dir[id].id = id;
    dir[id].host = host_ip;
    dir[id].wk_pull_port = static_cast<std::uint16_t>(base_port + 2 * id);
    dir[id].wk_offer_port = static_cast<std::uint16_t>(base_port + 2 * id + 1);
    dir[id].sign_pub = identity.sign_public();
    dir[id].dh_pub = identity.dh_public();
    auto secret = identity.serialize_secret();
    std::string key_path = out_dir + "/node" + std::to_string(id) + ".key";
    if (!write_file(key_path, util::to_hex(util::ByteSpan(secret)) + "\n")) {
      std::fprintf(stderr, "cannot write %s\n", key_path.c_str());
      return 1;
    }
  }
  std::string group_path = out_dir + "/group.txt";
  if (!write_file(group_path, core::format_group_file(dir))) {
    std::fprintf(stderr, "cannot write %s\n", group_path.c_str());
    return 1;
  }
  std::printf("wrote %s and %zu key files\n", group_path.c_str(), n);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  auto generate = flags.get_int("generate", 0, "generate a group of this size");
  auto out = flags.get_string("out", ".", "output directory for --generate");
  auto base_port = static_cast<std::uint16_t>(
      flags.get_int("base-port", 28000, "first well-known port (--generate)"));
  auto host = flags.get_string("host", "127.0.0.1", "member host (--generate)");

  auto id = static_cast<std::uint32_t>(flags.get_int("id", 0, "member id"));
  auto group_path = flags.get_string("group", "group.txt", "group file");
  auto key_path = flags.get_string("key", "node0.key", "secret key file");
  auto round_ms = flags.get_int("round-ms", 1000, "round duration (ms)");
  auto say = flags.get_string("say", "", "multicast this once at startup");
  auto rate = static_cast<std::size_t>(
      flags.get_int("rate", 0, "workload: messages per round"));
  auto run_secs = flags.get_int("run-secs", 0, "exit after this long (0 = run "
                                               "until stdin closes)");
  flags.done();

  if (generate > 0) {
    return generate_group(static_cast<std::size_t>(generate), out, base_port,
                          host);
  }

  auto group_text = read_file(group_path);
  if (!group_text) {
    std::fprintf(stderr, "cannot read group file %s\n", group_path.c_str());
    return 1;
  }
  std::string err;
  auto dir = core::parse_group_file(*group_text, &err);
  if (!dir) {
    std::fprintf(stderr, "bad group file: %s\n", err.c_str());
    return 1;
  }
  auto key_hex = read_file(key_path);
  if (!key_hex) {
    std::fprintf(stderr, "cannot read key file %s\n", key_path.c_str());
    return 1;
  }
  while (!key_hex->empty() && (key_hex->back() == '\n' || key_hex->back() == '\r')) {
    key_hex->pop_back();
  }
  auto secret = util::from_hex(*key_hex);
  if (!secret) {
    std::fprintf(stderr, "key file is not hex\n");
    return 1;
  }
  auto identity = crypto::Identity::deserialize_secret(util::ByteSpan(*secret));
  if (!identity) {
    std::fprintf(stderr, "malformed secret key\n");
    return 1;
  }
  if (id >= dir->size() || !(*dir)[id].present) {
    std::fprintf(stderr, "id %u not in group file\n", id);
    return 1;
  }
  if (identity->sign_public() != (*dir)[id].sign_pub) {
    std::fprintf(stderr, "key file does not match group entry for id %u\n",
                 id);
    return 1;
  }

  net::UdpTransport transport((*dir)[id].host);
  core::NodeConfig cfg = core::make_node_config(core::Variant::kDrum, id);
  cfg.wk_pull_port = (*dir)[id].wk_pull_port;
  cfg.wk_offer_port = (*dir)[id].wk_offer_port;
  util::Rng rng(static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count()) ^ id);
  core::Node node(cfg, *identity, *dir, transport, rng.next(),
                  [id](const core::Node::Delivery& d) {
                    std::printf("[%u] <%u:%llu> %.*s (%u rounds)\n", id,
                                d.msg.id.source,
                                static_cast<unsigned long long>(
                                    d.msg.id.seqno),
                                static_cast<int>(d.msg.payload.size()),
                                reinterpret_cast<const char*>(
                                    d.msg.payload.data()),
                                d.hops);
                    std::fflush(stdout);
                  });
  runtime::RunnerConfig rc;
  rc.round = std::chrono::milliseconds(round_ms);
  runtime::NodeRunner runner(node, rc, rng.next());
  runner.start();
  std::fprintf(stderr, "node %u up: pull port %u, offer port %u, round %lld "
                       "ms\n",
               id, cfg.wk_pull_port, cfg.wk_offer_port,
               static_cast<long long>(round_ms));

  if (!say.empty()) {
    runner.multicast(util::ByteSpan(
        reinterpret_cast<const std::uint8_t*>(say.data()), say.size()));
  }

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::seconds(run_secs);
  util::Rng payload_rng(id + 777);
  while (true) {
    if (run_secs > 0) {
      if (std::chrono::steady_clock::now() >= deadline) break;
      if (rate > 0) {
        for (std::size_t i = 0; i < rate; ++i) {
          util::Bytes payload(50);
          for (auto& b : payload) {
            b = static_cast<std::uint8_t>(payload_rng.below(256));
          }
          runner.multicast(util::ByteSpan(payload));
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(round_ms));
    } else {
      std::string line;
      if (!std::getline(std::cin, line)) break;
      if (!line.empty()) {
        runner.multicast(util::ByteSpan(
            reinterpret_cast<const std::uint8_t*>(line.data()), line.size()));
      }
    }
  }
  runner.stop();
  runner.with_node([](core::Node& n) {
    const auto& reg = n.registry();
    auto c = [&](const char* name) {
      return static_cast<unsigned long long>(reg.counter_value(name));
    };
    std::fprintf(stderr,
                 "stats: rounds=%llu delivered=%llu dups=%llu read=%llu "
                 "flushed=%llu decode_err=%llu box_fail=%llu\n",
                 c("node.rounds"), c("node.delivered"), c("node.duplicates"),
                 c("node.datagrams_read"), c("node.flushed_unread"),
                 c("node.decode_errors"), c("node.box_failures"));
  });
  return 0;
}
