// Chat over real UDP loopback sockets: N Drum nodes, each driven by its own
// runtime::NodeRunner thread with real-time jittered rounds; lines typed on
// stdin are multicast from node 0 and printed as every node delivers them.
//
//   ./build/examples/chat                 # interactive, 5 nodes
//   ./build/examples/chat --script true   # self-driving demo (used in CI)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "drum/check/annotations.hpp"
#include "drum/core/node.hpp"
#include "drum/crypto/keys.hpp"
#include "drum/net/udp_transport.hpp"
#include "drum/runtime/runner.hpp"
#include "drum/util/flags.hpp"

int main(int argc, char** argv) {
  using namespace drum;
  using namespace std::chrono_literals;
  util::Flags flags(argc, argv);
  auto n = static_cast<std::uint32_t>(flags.get_int("nodes", 5, "group size"));
  auto round_ms = flags.get_int("round-ms", 300, "round duration (ms)");
  auto base_port = static_cast<std::uint16_t>(
      flags.get_int("base-port", 26000, "first well-known UDP port"));
  bool script = flags.get_bool("script", false,
                               "non-interactive: send 3 canned lines, exit");
  flags.done();

  util::Rng rng(static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count()));

  std::vector<crypto::Identity> identities;
  std::vector<core::Peer> directory(n);
  const std::uint32_t host = net::parse_ipv4("127.0.0.1");
  for (std::uint32_t id = 0; id < n; ++id) {
    identities.push_back(crypto::Identity::generate(rng));
    directory[id] = {id,
                     host,
                     static_cast<std::uint16_t>(base_port + 2 * id),
                     static_cast<std::uint16_t>(base_port + 2 * id + 1),
                     0,
                     identities[id].sign_public(),
                     identities[id].dh_public(),
                     true};
  }

  check::Mutex stdout_mu;
  std::atomic<int> delivered{0};
  std::vector<std::unique_ptr<net::UdpTransport>> transports;
  std::vector<std::unique_ptr<core::Node>> nodes;
  std::vector<std::unique_ptr<runtime::NodeRunner>> runners;
  for (std::uint32_t id = 0; id < n; ++id) {
    transports.push_back(std::make_unique<net::UdpTransport>(host));
    core::NodeConfig cfg = core::make_node_config(core::Variant::kDrum, id);
    cfg.wk_pull_port = directory[id].wk_pull_port;
    cfg.wk_offer_port = directory[id].wk_offer_port;
    nodes.push_back(std::make_unique<core::Node>(
        cfg, identities[id], directory, *transports.back(), rng.next(),
        [id, &stdout_mu, &delivered](const core::Node::Delivery& d) {
          check::MutexLock lock(stdout_mu);
          std::printf("[node %u] <%u> %.*s   (%u rounds)\n", id,
                      d.msg.id.source, static_cast<int>(d.msg.payload.size()),
                      reinterpret_cast<const char*>(d.msg.payload.data()),
                      d.hops);
          std::fflush(stdout);
          delivered.fetch_add(1);
        }));
    runtime::RunnerConfig rc;
    rc.round = std::chrono::milliseconds(round_ms);
    runners.push_back(std::make_unique<runtime::NodeRunner>(*nodes.back(), rc,
                                                            rng.next()));
  }
  for (auto& r : runners) r->start();

  auto say = [&](const std::string& line) {
    runners[0]->multicast(util::ByteSpan(
        reinterpret_cast<const std::uint8_t*>(line.data()), line.size()));
  };

  if (script) {
    const char* lines[] = {"hello from node 0", "gossip works over real UDP",
                           "bye"};
    for (const char* l : lines) {
      say(l);
      std::this_thread::sleep_for(std::chrono::milliseconds(round_ms * 3));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(round_ms * 6));
    for (auto& r : runners) r->stop();
    int expected = static_cast<int>(n - 1) * 3;
    std::printf("script mode: %d/%d deliveries\n", delivered.load(), expected);
    return delivered.load() >= expected ? 0 : 1;
  }

  std::printf("chat ready: %u nodes over UDP 127.0.0.1:%u+. Type lines "
              "(Ctrl-D to quit):\n", n, base_port);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!line.empty()) say(line);
  }
  for (auto& r : runners) r->stop();
  return 0;
}
