// Adversary-zoo demo: runs one strategy from the drum::adversary registry
// against a LIVE swarm (real nodes, real datagrams, unsynchronized rounds),
// once with vanilla Drum and once with the peer-scoring + greylist defense,
// and prints the two windows side by side.
//
//   ./build/examples/adversary_demo                          # pull-amplify
//   ./build/examples/adversary_demo --strategy eclipse --seconds 6
//   ./build/examples/adversary_demo --strategy flood --x 256
//   ./build/examples/adversary_demo --list
#include <chrono>
#include <cstdio>
#include <string>

#include "drum/adversary/adversary.hpp"
#include "drum/harness/swarm.hpp"
#include "drum/util/flags.hpp"
#include "drum/util/table.hpp"

namespace {

drum::harness::SwarmReport run(const drum::harness::SwarmConfig& cfg,
                               std::chrono::milliseconds window) {
  drum::harness::Swarm swarm(cfg);
  swarm.start();
  swarm.run_for(window);
  swarm.stop();
  return swarm.report();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace drum;
  util::Flags flags(argc, argv);
  auto strategy = flags.get_string("strategy", "pull-amplify",
                                   "adversary strategy (see --list)");
  bool list =
      flags.get_bool("list", false, "print registered strategies and exit");
  auto n = static_cast<std::size_t>(flags.get_int("n", 48, "live group size"));
  double alpha = flags.get_double("alpha", 0.25, "attacked fraction");
  double x = flags.get_double("x", 128, "fabricated msgs/victim/round");
  double malicious =
      flags.get_double("malicious", 0.125, "colluding-insider fraction");
  auto seconds = flags.get_double("seconds", 4, "measurement window");
  auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7, "RNG seed"));
  flags.done();

  if (list) {
    for (const auto& name : adversary::registered()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  harness::SwarmConfig cfg;
  cfg.variant = core::Variant::kDrum;
  cfg.n = n;
  cfg.alpha = alpha;
  cfg.x = x;
  cfg.malicious = malicious;
  cfg.adversary = strategy;
  cfg.seed = seed;
  cfg.round = std::chrono::milliseconds(100);
  cfg.verify_signatures = false;
  const auto window = std::chrono::milliseconds(
      static_cast<std::int64_t>(seconds * 1000.0));

  std::printf("# adversary demo: strategy=%s n=%zu alpha=%.2f x=%.0f "
              "malicious=%.3f window=%.1fs\n",
              strategy.c_str(), n, alpha, x, malicious, seconds);

  auto vanilla = run(cfg, window);
  cfg.scoring.enabled = true;
  auto scored = run(cfg, window);

  util::Table t({"defense", "delivered", "lat p50 ms", "lat p99 ms",
                 "attack dgrams", "grey drops", "greylisted"});
  t.add_row({0.0, static_cast<double>(vanilla.delivered),
             vanilla.latency_ms_p50, vanilla.latency_ms_p99,
             static_cast<double>(vanilla.attack_datagrams),
             static_cast<double>(vanilla.greylist_drops),
             static_cast<double>(vanilla.greylisted_at_end)},
            1);
  t.add_row({1.0, static_cast<double>(scored.delivered),
             scored.latency_ms_p50, scored.latency_ms_p99,
             static_cast<double>(scored.attack_datagrams),
             static_cast<double>(scored.greylist_drops),
             static_cast<double>(scored.greylisted_at_end)},
            1);
  t.print("vanilla Drum (defense=0) vs Drum + peer scoring (defense=1)");

  std::printf("\ncolluders=%zu; scoring dropped %llu greylisted frames "
              "pre-budget, %llu (node,peer) pairs greylisted at end\n",
              scored.colluders,
              static_cast<unsigned long long>(scored.greylist_drops),
              static_cast<unsigned long long>(scored.greylisted_at_end));
  return 0;
}
