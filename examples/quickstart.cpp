// Quickstart: the smallest complete Drum deployment.
//
// Eight nodes gossip over the in-process network; node 0 multicasts a few
// messages; every node delivers them within a handful of rounds. Shows the
// minimal wiring: identities -> directory -> nodes -> round ticks + polls.
//
//   ./build/examples/quickstart
#include <cstdio>
#include <memory>
#include <vector>

#include "drum/core/node.hpp"
#include "drum/crypto/keys.hpp"
#include "drum/net/mem_transport.hpp"

int main() {
  using namespace drum;
  constexpr std::uint32_t kNodes = 8;
  util::Rng rng(2026);
  net::MemNetwork network;  // the "LAN"

  // 1. Identities and the shared directory: every member's keys and
  //    well-known ports. (A static group; see membership_demo for dynamic.)
  std::vector<crypto::Identity> identities;
  std::vector<core::Peer> directory(kNodes);
  for (std::uint32_t id = 0; id < kNodes; ++id) {
    identities.push_back(crypto::Identity::generate(rng));
    directory[id].id = id;
    directory[id].host = id;  // MemNetwork host number
    directory[id].wk_pull_port = static_cast<std::uint16_t>(5000 + 2 * id);
    directory[id].wk_offer_port = static_cast<std::uint16_t>(5001 + 2 * id);
    directory[id].sign_pub = identities[id].sign_public();
    directory[id].dh_pub = identities[id].dh_public();
  }

  // 2. Nodes. Each gets its own transport endpoint and a delivery callback.
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<core::Node>> nodes;
  int delivered_total = 0;
  for (std::uint32_t id = 0; id < kNodes; ++id) {
    transports.push_back(network.transport(id));
    core::NodeConfig cfg = core::make_node_config(core::Variant::kDrum, id);
    cfg.wk_pull_port = directory[id].wk_pull_port;
    cfg.wk_offer_port = directory[id].wk_offer_port;
    nodes.push_back(std::make_unique<core::Node>(
        cfg, identities[id], directory, *transports.back(), rng.next(),
        [id, &delivered_total](const core::Node::Delivery& d) {
          std::printf("  node %u delivered \"%.*s\" from node %u "
                      "(%u rounds)\n",
                      id, static_cast<int>(d.msg.payload.size()),
                      reinterpret_cast<const char*>(d.msg.payload.data()),
                      d.msg.id.source, d.hops);
          ++delivered_total;
        }));
  }

  // 3. Node 0 multicasts.
  const char* messages[] = {"hello gossip", "drum resists DoS",
                            "third message"};
  for (const char* text : messages) {
    std::printf("node 0 multicasts \"%s\"\n", text);
    nodes[0]->multicast(util::ByteSpan(
        reinterpret_cast<const std::uint8_t*>(text), std::strlen(text)));
  }

  // 4. Drive rounds: tick every node, then let datagrams flow. Each sweep
  // uses the push-style ingress API (DESIGN.md §12): drain all nodes into
  // one batch, batch-verify, then push the checked frames back in.
  for (int round = 1; round <= 6; ++round) {
    std::printf("--- round %d ---\n", round);
    for (auto& n : nodes) n->on_round();
    for (int sweep = 0; sweep < 4; ++sweep) {
      drum::core::ingress::IngressBatch batch;
      for (auto& n : nodes) n->drain_ingress(batch);
      batch.dispatch();
    }
  }

  std::printf("total deliveries: %d (expected %d)\n", delivered_total,
              static_cast<int>(kNodes - 1) * 3);
  return delivered_total == static_cast<int>(kNodes - 1) * 3 ? 0 : 1;
}
