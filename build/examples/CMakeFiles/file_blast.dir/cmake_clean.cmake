file(REMOVE_RECURSE
  "CMakeFiles/file_blast.dir/file_blast.cpp.o"
  "CMakeFiles/file_blast.dir/file_blast.cpp.o.d"
  "file_blast"
  "file_blast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_blast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
