# Empty dependencies file for file_blast.
# This may be replaced when dependencies are built.
