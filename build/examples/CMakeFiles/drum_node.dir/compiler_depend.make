# Empty compiler generated dependencies file for drum_node.
# This may be replaced when dependencies are built.
