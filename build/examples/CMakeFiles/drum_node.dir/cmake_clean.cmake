file(REMOVE_RECURSE
  "CMakeFiles/drum_node.dir/drum_node.cpp.o"
  "CMakeFiles/drum_node.dir/drum_node.cpp.o.d"
  "drum_node"
  "drum_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drum_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
