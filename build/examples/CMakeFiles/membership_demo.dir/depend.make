# Empty dependencies file for membership_demo.
# This may be replaced when dependencies are built.
