file(REMOVE_RECURSE
  "CMakeFiles/membership_demo.dir/membership_demo.cpp.o"
  "CMakeFiles/membership_demo.dir/membership_demo.cpp.o.d"
  "membership_demo"
  "membership_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membership_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
