file(REMOVE_RECURSE
  "CMakeFiles/fig09_sim_vs_measured.dir/fig09_sim_vs_measured.cpp.o"
  "CMakeFiles/fig09_sim_vs_measured.dir/fig09_sim_vs_measured.cpp.o.d"
  "fig09_sim_vs_measured"
  "fig09_sim_vs_measured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_sim_vs_measured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
