# Empty compiler generated dependencies file for fig09_sim_vs_measured.
# This may be replaced when dependencies are built.
