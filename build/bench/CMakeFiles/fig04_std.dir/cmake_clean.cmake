file(REMOVE_RECURSE
  "CMakeFiles/fig04_std.dir/fig04_std.cpp.o"
  "CMakeFiles/fig04_std.dir/fig04_std.cpp.o.d"
  "fig04_std"
  "fig04_std.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_std.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
