# Empty dependencies file for fig04_std.
# This may be replaced when dependencies are built.
