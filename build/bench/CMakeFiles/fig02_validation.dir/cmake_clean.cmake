file(REMOVE_RECURSE
  "CMakeFiles/fig02_validation.dir/fig02_validation.cpp.o"
  "CMakeFiles/fig02_validation.dir/fig02_validation.cpp.o.d"
  "fig02_validation"
  "fig02_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
