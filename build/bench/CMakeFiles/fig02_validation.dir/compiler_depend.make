# Empty compiler generated dependencies file for fig02_validation.
# This may be replaced when dependencies are built.
