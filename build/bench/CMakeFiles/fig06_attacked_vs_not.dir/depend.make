# Empty dependencies file for fig06_attacked_vs_not.
# This may be replaced when dependencies are built.
