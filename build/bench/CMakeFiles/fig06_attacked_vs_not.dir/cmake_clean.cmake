file(REMOVE_RECURSE
  "CMakeFiles/fig06_attacked_vs_not.dir/fig06_attacked_vs_not.cpp.o"
  "CMakeFiles/fig06_attacked_vs_not.dir/fig06_attacked_vs_not.cpp.o.d"
  "fig06_attacked_vs_not"
  "fig06_attacked_vs_not.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_attacked_vs_not.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
