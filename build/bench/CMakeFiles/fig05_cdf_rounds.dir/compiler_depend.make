# Empty compiler generated dependencies file for fig05_cdf_rounds.
# This may be replaced when dependencies are built.
