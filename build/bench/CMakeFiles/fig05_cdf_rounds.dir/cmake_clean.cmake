file(REMOVE_RECURSE
  "CMakeFiles/fig05_cdf_rounds.dir/fig05_cdf_rounds.cpp.o"
  "CMakeFiles/fig05_cdf_rounds.dir/fig05_cdf_rounds.cpp.o.d"
  "fig05_cdf_rounds"
  "fig05_cdf_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_cdf_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
