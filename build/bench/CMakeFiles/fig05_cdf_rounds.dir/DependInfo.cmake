
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig05_cdf_rounds.cpp" "bench/CMakeFiles/fig05_cdf_rounds.dir/fig05_cdf_rounds.cpp.o" "gcc" "bench/CMakeFiles/fig05_cdf_rounds.dir/fig05_cdf_rounds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/drum/sim/CMakeFiles/drum_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/drum/harness/CMakeFiles/drum_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/drum/util/CMakeFiles/drum_util.dir/DependInfo.cmake"
  "/root/repo/build/src/drum/core/CMakeFiles/drum_core.dir/DependInfo.cmake"
  "/root/repo/build/src/drum/crypto/CMakeFiles/drum_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/drum/net/CMakeFiles/drum_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
