# Empty dependencies file for fig03_targeted_attacks.
# This may be replaced when dependencies are built.
