file(REMOVE_RECURSE
  "CMakeFiles/fig03_targeted_attacks.dir/fig03_targeted_attacks.cpp.o"
  "CMakeFiles/fig03_targeted_attacks.dir/fig03_targeted_attacks.cpp.o.d"
  "fig03_targeted_attacks"
  "fig03_targeted_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_targeted_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
