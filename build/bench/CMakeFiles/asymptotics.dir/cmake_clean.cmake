file(REMOVE_RECURSE
  "CMakeFiles/asymptotics.dir/asymptotics.cpp.o"
  "CMakeFiles/asymptotics.dir/asymptotics.cpp.o.d"
  "asymptotics"
  "asymptotics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asymptotics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
