# Empty compiler generated dependencies file for asymptotics.
# This may be replaced when dependencies are built.
