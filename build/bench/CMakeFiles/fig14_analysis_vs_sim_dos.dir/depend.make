# Empty dependencies file for fig14_analysis_vs_sim_dos.
# This may be replaced when dependencies are built.
