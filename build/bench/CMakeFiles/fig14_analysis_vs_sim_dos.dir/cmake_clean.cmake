file(REMOVE_RECURSE
  "CMakeFiles/fig14_analysis_vs_sim_dos.dir/fig14_analysis_vs_sim_dos.cpp.o"
  "CMakeFiles/fig14_analysis_vs_sim_dos.dir/fig14_analysis_vs_sim_dos.cpp.o.d"
  "fig14_analysis_vs_sim_dos"
  "fig14_analysis_vs_sim_dos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_analysis_vs_sim_dos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
