# Empty compiler generated dependencies file for fig07_fixed_strength.
# This may be replaced when dependencies are built.
