file(REMOVE_RECURSE
  "CMakeFiles/fig07_fixed_strength.dir/fig07_fixed_strength.cpp.o"
  "CMakeFiles/fig07_fixed_strength.dir/fig07_fixed_strength.cpp.o.d"
  "fig07_fixed_strength"
  "fig07_fixed_strength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_fixed_strength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
