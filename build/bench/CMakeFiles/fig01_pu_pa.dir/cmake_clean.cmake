file(REMOVE_RECURSE
  "CMakeFiles/fig01_pu_pa.dir/fig01_pu_pa.cpp.o"
  "CMakeFiles/fig01_pu_pa.dir/fig01_pu_pa.cpp.o.d"
  "fig01_pu_pa"
  "fig01_pu_pa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_pu_pa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
