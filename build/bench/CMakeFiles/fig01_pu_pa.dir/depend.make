# Empty dependencies file for fig01_pu_pa.
# This may be replaced when dependencies are built.
