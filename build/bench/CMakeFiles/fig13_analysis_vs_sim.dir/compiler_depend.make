# Empty compiler generated dependencies file for fig13_analysis_vs_sim.
# This may be replaced when dependencies are built.
