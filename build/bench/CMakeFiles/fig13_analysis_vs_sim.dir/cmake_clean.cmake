file(REMOVE_RECURSE
  "CMakeFiles/fig13_analysis_vs_sim.dir/fig13_analysis_vs_sim.cpp.o"
  "CMakeFiles/fig13_analysis_vs_sim.dir/fig13_analysis_vs_sim.cpp.o.d"
  "fig13_analysis_vs_sim"
  "fig13_analysis_vs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_analysis_vs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
