# Empty dependencies file for fig12_mitigations.
# This may be replaced when dependencies are built.
