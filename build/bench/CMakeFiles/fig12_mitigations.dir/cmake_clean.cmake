file(REMOVE_RECURSE
  "CMakeFiles/fig12_mitigations.dir/fig12_mitigations.cpp.o"
  "CMakeFiles/fig12_mitigations.dir/fig12_mitigations.cpp.o.d"
  "fig12_mitigations"
  "fig12_mitigations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_mitigations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
