# Empty compiler generated dependencies file for fig08_weak_attacks.
# This may be replaced when dependencies are built.
