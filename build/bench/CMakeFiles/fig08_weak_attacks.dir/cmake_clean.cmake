file(REMOVE_RECURSE
  "CMakeFiles/fig08_weak_attacks.dir/fig08_weak_attacks.cpp.o"
  "CMakeFiles/fig08_weak_attacks.dir/fig08_weak_attacks.cpp.o.d"
  "fig08_weak_attacks"
  "fig08_weak_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_weak_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
