file(REMOVE_RECURSE
  "CMakeFiles/drum_util.dir/bytes.cpp.o"
  "CMakeFiles/drum_util.dir/bytes.cpp.o.d"
  "CMakeFiles/drum_util.dir/flags.cpp.o"
  "CMakeFiles/drum_util.dir/flags.cpp.o.d"
  "CMakeFiles/drum_util.dir/log.cpp.o"
  "CMakeFiles/drum_util.dir/log.cpp.o.d"
  "CMakeFiles/drum_util.dir/rng.cpp.o"
  "CMakeFiles/drum_util.dir/rng.cpp.o.d"
  "CMakeFiles/drum_util.dir/stats.cpp.o"
  "CMakeFiles/drum_util.dir/stats.cpp.o.d"
  "CMakeFiles/drum_util.dir/table.cpp.o"
  "CMakeFiles/drum_util.dir/table.cpp.o.d"
  "libdrum_util.a"
  "libdrum_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drum_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
