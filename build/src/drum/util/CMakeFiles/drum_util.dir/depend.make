# Empty dependencies file for drum_util.
# This may be replaced when dependencies are built.
