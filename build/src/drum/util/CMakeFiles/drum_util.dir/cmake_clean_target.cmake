file(REMOVE_RECURSE
  "libdrum_util.a"
)
