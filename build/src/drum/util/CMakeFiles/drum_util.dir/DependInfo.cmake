
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drum/util/bytes.cpp" "src/drum/util/CMakeFiles/drum_util.dir/bytes.cpp.o" "gcc" "src/drum/util/CMakeFiles/drum_util.dir/bytes.cpp.o.d"
  "/root/repo/src/drum/util/flags.cpp" "src/drum/util/CMakeFiles/drum_util.dir/flags.cpp.o" "gcc" "src/drum/util/CMakeFiles/drum_util.dir/flags.cpp.o.d"
  "/root/repo/src/drum/util/log.cpp" "src/drum/util/CMakeFiles/drum_util.dir/log.cpp.o" "gcc" "src/drum/util/CMakeFiles/drum_util.dir/log.cpp.o.d"
  "/root/repo/src/drum/util/rng.cpp" "src/drum/util/CMakeFiles/drum_util.dir/rng.cpp.o" "gcc" "src/drum/util/CMakeFiles/drum_util.dir/rng.cpp.o.d"
  "/root/repo/src/drum/util/stats.cpp" "src/drum/util/CMakeFiles/drum_util.dir/stats.cpp.o" "gcc" "src/drum/util/CMakeFiles/drum_util.dir/stats.cpp.o.d"
  "/root/repo/src/drum/util/table.cpp" "src/drum/util/CMakeFiles/drum_util.dir/table.cpp.o" "gcc" "src/drum/util/CMakeFiles/drum_util.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
