
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drum/crypto/bigint.cpp" "src/drum/crypto/CMakeFiles/drum_crypto.dir/bigint.cpp.o" "gcc" "src/drum/crypto/CMakeFiles/drum_crypto.dir/bigint.cpp.o.d"
  "/root/repo/src/drum/crypto/chacha20.cpp" "src/drum/crypto/CMakeFiles/drum_crypto.dir/chacha20.cpp.o" "gcc" "src/drum/crypto/CMakeFiles/drum_crypto.dir/chacha20.cpp.o.d"
  "/root/repo/src/drum/crypto/ed25519.cpp" "src/drum/crypto/CMakeFiles/drum_crypto.dir/ed25519.cpp.o" "gcc" "src/drum/crypto/CMakeFiles/drum_crypto.dir/ed25519.cpp.o.d"
  "/root/repo/src/drum/crypto/fe25519.cpp" "src/drum/crypto/CMakeFiles/drum_crypto.dir/fe25519.cpp.o" "gcc" "src/drum/crypto/CMakeFiles/drum_crypto.dir/fe25519.cpp.o.d"
  "/root/repo/src/drum/crypto/hmac.cpp" "src/drum/crypto/CMakeFiles/drum_crypto.dir/hmac.cpp.o" "gcc" "src/drum/crypto/CMakeFiles/drum_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/drum/crypto/keys.cpp" "src/drum/crypto/CMakeFiles/drum_crypto.dir/keys.cpp.o" "gcc" "src/drum/crypto/CMakeFiles/drum_crypto.dir/keys.cpp.o.d"
  "/root/repo/src/drum/crypto/portbox.cpp" "src/drum/crypto/CMakeFiles/drum_crypto.dir/portbox.cpp.o" "gcc" "src/drum/crypto/CMakeFiles/drum_crypto.dir/portbox.cpp.o.d"
  "/root/repo/src/drum/crypto/sha256.cpp" "src/drum/crypto/CMakeFiles/drum_crypto.dir/sha256.cpp.o" "gcc" "src/drum/crypto/CMakeFiles/drum_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/drum/crypto/sha512.cpp" "src/drum/crypto/CMakeFiles/drum_crypto.dir/sha512.cpp.o" "gcc" "src/drum/crypto/CMakeFiles/drum_crypto.dir/sha512.cpp.o.d"
  "/root/repo/src/drum/crypto/x25519.cpp" "src/drum/crypto/CMakeFiles/drum_crypto.dir/x25519.cpp.o" "gcc" "src/drum/crypto/CMakeFiles/drum_crypto.dir/x25519.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/drum/util/CMakeFiles/drum_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
