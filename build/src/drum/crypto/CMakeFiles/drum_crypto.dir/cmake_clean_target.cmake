file(REMOVE_RECURSE
  "libdrum_crypto.a"
)
