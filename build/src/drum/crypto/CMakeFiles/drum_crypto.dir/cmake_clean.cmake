file(REMOVE_RECURSE
  "CMakeFiles/drum_crypto.dir/bigint.cpp.o"
  "CMakeFiles/drum_crypto.dir/bigint.cpp.o.d"
  "CMakeFiles/drum_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/drum_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/drum_crypto.dir/ed25519.cpp.o"
  "CMakeFiles/drum_crypto.dir/ed25519.cpp.o.d"
  "CMakeFiles/drum_crypto.dir/fe25519.cpp.o"
  "CMakeFiles/drum_crypto.dir/fe25519.cpp.o.d"
  "CMakeFiles/drum_crypto.dir/hmac.cpp.o"
  "CMakeFiles/drum_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/drum_crypto.dir/keys.cpp.o"
  "CMakeFiles/drum_crypto.dir/keys.cpp.o.d"
  "CMakeFiles/drum_crypto.dir/portbox.cpp.o"
  "CMakeFiles/drum_crypto.dir/portbox.cpp.o.d"
  "CMakeFiles/drum_crypto.dir/sha256.cpp.o"
  "CMakeFiles/drum_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/drum_crypto.dir/sha512.cpp.o"
  "CMakeFiles/drum_crypto.dir/sha512.cpp.o.d"
  "CMakeFiles/drum_crypto.dir/x25519.cpp.o"
  "CMakeFiles/drum_crypto.dir/x25519.cpp.o.d"
  "libdrum_crypto.a"
  "libdrum_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drum_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
