# Empty compiler generated dependencies file for drum_crypto.
# This may be replaced when dependencies are built.
