# Empty dependencies file for drum_analysis.
# This may be replaced when dependencies are built.
