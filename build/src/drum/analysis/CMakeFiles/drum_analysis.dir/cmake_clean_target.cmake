file(REMOVE_RECURSE
  "libdrum_analysis.a"
)
