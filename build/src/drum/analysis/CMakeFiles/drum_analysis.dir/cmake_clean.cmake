file(REMOVE_RECURSE
  "CMakeFiles/drum_analysis.dir/appendix_a.cpp.o"
  "CMakeFiles/drum_analysis.dir/appendix_a.cpp.o.d"
  "CMakeFiles/drum_analysis.dir/appendix_b.cpp.o"
  "CMakeFiles/drum_analysis.dir/appendix_b.cpp.o.d"
  "CMakeFiles/drum_analysis.dir/appendix_c.cpp.o"
  "CMakeFiles/drum_analysis.dir/appendix_c.cpp.o.d"
  "CMakeFiles/drum_analysis.dir/asymptotics.cpp.o"
  "CMakeFiles/drum_analysis.dir/asymptotics.cpp.o.d"
  "CMakeFiles/drum_analysis.dir/binomial.cpp.o"
  "CMakeFiles/drum_analysis.dir/binomial.cpp.o.d"
  "libdrum_analysis.a"
  "libdrum_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drum_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
