
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drum/analysis/appendix_a.cpp" "src/drum/analysis/CMakeFiles/drum_analysis.dir/appendix_a.cpp.o" "gcc" "src/drum/analysis/CMakeFiles/drum_analysis.dir/appendix_a.cpp.o.d"
  "/root/repo/src/drum/analysis/appendix_b.cpp" "src/drum/analysis/CMakeFiles/drum_analysis.dir/appendix_b.cpp.o" "gcc" "src/drum/analysis/CMakeFiles/drum_analysis.dir/appendix_b.cpp.o.d"
  "/root/repo/src/drum/analysis/appendix_c.cpp" "src/drum/analysis/CMakeFiles/drum_analysis.dir/appendix_c.cpp.o" "gcc" "src/drum/analysis/CMakeFiles/drum_analysis.dir/appendix_c.cpp.o.d"
  "/root/repo/src/drum/analysis/asymptotics.cpp" "src/drum/analysis/CMakeFiles/drum_analysis.dir/asymptotics.cpp.o" "gcc" "src/drum/analysis/CMakeFiles/drum_analysis.dir/asymptotics.cpp.o.d"
  "/root/repo/src/drum/analysis/binomial.cpp" "src/drum/analysis/CMakeFiles/drum_analysis.dir/binomial.cpp.o" "gcc" "src/drum/analysis/CMakeFiles/drum_analysis.dir/binomial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/drum/util/CMakeFiles/drum_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
