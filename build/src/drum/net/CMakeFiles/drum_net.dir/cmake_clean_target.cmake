file(REMOVE_RECURSE
  "libdrum_net.a"
)
