
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drum/net/address.cpp" "src/drum/net/CMakeFiles/drum_net.dir/address.cpp.o" "gcc" "src/drum/net/CMakeFiles/drum_net.dir/address.cpp.o.d"
  "/root/repo/src/drum/net/mem_transport.cpp" "src/drum/net/CMakeFiles/drum_net.dir/mem_transport.cpp.o" "gcc" "src/drum/net/CMakeFiles/drum_net.dir/mem_transport.cpp.o.d"
  "/root/repo/src/drum/net/udp_transport.cpp" "src/drum/net/CMakeFiles/drum_net.dir/udp_transport.cpp.o" "gcc" "src/drum/net/CMakeFiles/drum_net.dir/udp_transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/drum/util/CMakeFiles/drum_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
