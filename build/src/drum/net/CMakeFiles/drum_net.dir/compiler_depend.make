# Empty compiler generated dependencies file for drum_net.
# This may be replaced when dependencies are built.
