file(REMOVE_RECURSE
  "CMakeFiles/drum_net.dir/address.cpp.o"
  "CMakeFiles/drum_net.dir/address.cpp.o.d"
  "CMakeFiles/drum_net.dir/mem_transport.cpp.o"
  "CMakeFiles/drum_net.dir/mem_transport.cpp.o.d"
  "CMakeFiles/drum_net.dir/udp_transport.cpp.o"
  "CMakeFiles/drum_net.dir/udp_transport.cpp.o.d"
  "libdrum_net.a"
  "libdrum_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drum_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
