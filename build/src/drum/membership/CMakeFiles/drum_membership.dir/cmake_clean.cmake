file(REMOVE_RECURSE
  "CMakeFiles/drum_membership.dir/ca.cpp.o"
  "CMakeFiles/drum_membership.dir/ca.cpp.o.d"
  "CMakeFiles/drum_membership.dir/ca_server.cpp.o"
  "CMakeFiles/drum_membership.dir/ca_server.cpp.o.d"
  "CMakeFiles/drum_membership.dir/certificate.cpp.o"
  "CMakeFiles/drum_membership.dir/certificate.cpp.o.d"
  "CMakeFiles/drum_membership.dir/failure_detector.cpp.o"
  "CMakeFiles/drum_membership.dir/failure_detector.cpp.o.d"
  "CMakeFiles/drum_membership.dir/service.cpp.o"
  "CMakeFiles/drum_membership.dir/service.cpp.o.d"
  "CMakeFiles/drum_membership.dir/table.cpp.o"
  "CMakeFiles/drum_membership.dir/table.cpp.o.d"
  "libdrum_membership.a"
  "libdrum_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drum_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
