# Empty compiler generated dependencies file for drum_membership.
# This may be replaced when dependencies are built.
