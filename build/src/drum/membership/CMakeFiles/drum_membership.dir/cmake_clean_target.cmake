file(REMOVE_RECURSE
  "libdrum_membership.a"
)
