file(REMOVE_RECURSE
  "libdrum_core.a"
)
