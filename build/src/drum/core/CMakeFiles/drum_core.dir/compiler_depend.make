# Empty compiler generated dependencies file for drum_core.
# This may be replaced when dependencies are built.
