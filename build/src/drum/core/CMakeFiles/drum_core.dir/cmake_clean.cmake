file(REMOVE_RECURSE
  "CMakeFiles/drum_core.dir/buffer.cpp.o"
  "CMakeFiles/drum_core.dir/buffer.cpp.o.d"
  "CMakeFiles/drum_core.dir/config.cpp.o"
  "CMakeFiles/drum_core.dir/config.cpp.o.d"
  "CMakeFiles/drum_core.dir/groupfile.cpp.o"
  "CMakeFiles/drum_core.dir/groupfile.cpp.o.d"
  "CMakeFiles/drum_core.dir/message.cpp.o"
  "CMakeFiles/drum_core.dir/message.cpp.o.d"
  "CMakeFiles/drum_core.dir/node.cpp.o"
  "CMakeFiles/drum_core.dir/node.cpp.o.d"
  "CMakeFiles/drum_core.dir/ordered.cpp.o"
  "CMakeFiles/drum_core.dir/ordered.cpp.o.d"
  "libdrum_core.a"
  "libdrum_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drum_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
