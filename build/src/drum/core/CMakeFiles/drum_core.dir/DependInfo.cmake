
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drum/core/buffer.cpp" "src/drum/core/CMakeFiles/drum_core.dir/buffer.cpp.o" "gcc" "src/drum/core/CMakeFiles/drum_core.dir/buffer.cpp.o.d"
  "/root/repo/src/drum/core/config.cpp" "src/drum/core/CMakeFiles/drum_core.dir/config.cpp.o" "gcc" "src/drum/core/CMakeFiles/drum_core.dir/config.cpp.o.d"
  "/root/repo/src/drum/core/groupfile.cpp" "src/drum/core/CMakeFiles/drum_core.dir/groupfile.cpp.o" "gcc" "src/drum/core/CMakeFiles/drum_core.dir/groupfile.cpp.o.d"
  "/root/repo/src/drum/core/message.cpp" "src/drum/core/CMakeFiles/drum_core.dir/message.cpp.o" "gcc" "src/drum/core/CMakeFiles/drum_core.dir/message.cpp.o.d"
  "/root/repo/src/drum/core/node.cpp" "src/drum/core/CMakeFiles/drum_core.dir/node.cpp.o" "gcc" "src/drum/core/CMakeFiles/drum_core.dir/node.cpp.o.d"
  "/root/repo/src/drum/core/ordered.cpp" "src/drum/core/CMakeFiles/drum_core.dir/ordered.cpp.o" "gcc" "src/drum/core/CMakeFiles/drum_core.dir/ordered.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/drum/util/CMakeFiles/drum_util.dir/DependInfo.cmake"
  "/root/repo/build/src/drum/crypto/CMakeFiles/drum_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/drum/net/CMakeFiles/drum_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
