file(REMOVE_RECURSE
  "CMakeFiles/drum_harness.dir/cluster.cpp.o"
  "CMakeFiles/drum_harness.dir/cluster.cpp.o.d"
  "libdrum_harness.a"
  "libdrum_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drum_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
