file(REMOVE_RECURSE
  "libdrum_harness.a"
)
