# Empty dependencies file for drum_harness.
# This may be replaced when dependencies are built.
