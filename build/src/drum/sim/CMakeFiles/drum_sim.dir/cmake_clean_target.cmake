file(REMOVE_RECURSE
  "libdrum_sim.a"
)
