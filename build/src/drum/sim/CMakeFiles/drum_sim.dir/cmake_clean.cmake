file(REMOVE_RECURSE
  "CMakeFiles/drum_sim.dir/engine.cpp.o"
  "CMakeFiles/drum_sim.dir/engine.cpp.o.d"
  "libdrum_sim.a"
  "libdrum_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drum_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
