# Empty compiler generated dependencies file for drum_sim.
# This may be replaced when dependencies are built.
