file(REMOVE_RECURSE
  "libdrum_runtime.a"
)
