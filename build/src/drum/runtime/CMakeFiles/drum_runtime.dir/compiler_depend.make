# Empty compiler generated dependencies file for drum_runtime.
# This may be replaced when dependencies are built.
