file(REMOVE_RECURSE
  "CMakeFiles/drum_runtime.dir/runner.cpp.o"
  "CMakeFiles/drum_runtime.dir/runner.cpp.o.d"
  "libdrum_runtime.a"
  "libdrum_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drum_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
