# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("drum/util")
subdirs("drum/crypto")
subdirs("drum/analysis")
subdirs("drum/sim")
subdirs("drum/net")
subdirs("drum/core")
subdirs("drum/membership")
subdirs("drum/runtime")
subdirs("drum/harness")
